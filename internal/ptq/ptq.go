// Package ptq implements the post-training-quantization pipeline the QUQ
// paper's accuracy experiments run on: calibration-statistics collection
// over a small image set, per-tensor quantizer construction by a
// pluggable Method, weight quantization on a cloned model, and a
// quantized executor that rewrites every Figure 1 quantization point
// during inference.
//
// Two regimes mirror the paper's tables: Partial quantizes only GEMM
// inputs and weights (Table 2), Full additionally quantizes every
// remaining activation — residual-connection, LayerNorm, Softmax and
// GELU inputs (Table 3).
package ptq

import (
	"fmt"
	"math"
	"sync/atomic"

	"quq/internal/quant"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// Regime selects which Figure 1 sites are quantized.
type Regime int

const (
	// Partial quantizes GEMM inputs and weights only; the remaining
	// activations stay in floating point (the paper's Table 2 setting).
	Partial Regime = iota
	// Full quantizes every activation in the data flow (Table 3).
	Full
)

func (r Regime) String() string {
	if r == Partial {
		return "partial"
	}
	return "full"
}

// covers reports whether the regime quantizes the given site kind.
func (r Regime) covers(k vit.SiteKind) bool {
	switch k {
	case vit.KindWeight, vit.KindGEMMIn:
		return true
	case vit.KindActivation:
		return r == Full
	}
	return false
}

// TensorQuantizer fake-quantizes activation tensors at one site.
type TensorQuantizer interface {
	// Apply returns the fake-quantized tensor. Implementations may
	// return a new tensor or mutate and return x.
	Apply(x *tensor.Tensor) *tensor.Tensor
}

// Method builds quantizers from calibration statistics. Implementations:
// QUQ (this package) and the comparison schemes in internal/baselines.
type Method interface {
	// Name is the row label used in the experiment tables.
	Name() string
	// CalibrateActivation builds the quantizer for one activation site.
	CalibrateActivation(stats *SiteStats, bits int) TensorQuantizer
	// QuantizeWeight fake-quantizes a weight tensor in place (the
	// pipeline passes a cloned model's weights).
	QuantizeWeight(site vit.Site, w *tensor.Tensor, bits int)
}

// WeightParamsRecorder is an optional Method extension: during Quantize,
// the pipeline installs a callback through which the method reports the
// exact quantizer parameter set used for each weight tensor. The
// parameters land in QuantizedModel.WeightParams, which the integer
// forward engine (NewIntEngine) needs to recover resident integer
// operands from the fake-quantized weights. Installing nil removes the
// callback.
type WeightParamsRecorder interface {
	RecordWeightParams(fn func(site vit.Site, p *quant.Params))
}

// InputAwareWeightQuantizer is an optional Method extension: when a
// method implements it, the pipeline supplies the per-input-channel
// second moments E[x_d²] of the weight's GEMM input — the diagonal-
// Hessian proxy — so the method can minimize expected output error
// instead of raw weight error (the paper's layer-wise Hessian-guided
// grid search).
type InputAwareWeightQuantizer interface {
	QuantizeWeightAware(site vit.Site, w *tensor.Tensor, bits int, inputSq []float64)
}

// weightInputSite maps a weight site to the activation site feeding its
// GEMM.
func weightInputSite(s vit.Site) (vit.Site, bool) {
	switch s.Name {
	case "attn.qkv.w":
		return vit.Site{Block: s.Block, Name: "ln1.out", Kind: vit.KindGEMMIn}, true
	case "attn.proj.w":
		return vit.Site{Block: s.Block, Name: "attn.proj_in", Kind: vit.KindGEMMIn}, true
	case "mlp.fc1.w":
		return vit.Site{Block: s.Block, Name: "ln2.out", Kind: vit.KindGEMMIn}, true
	case "mlp.fc2.w":
		return vit.Site{Block: s.Block, Name: "mlp.gelu_out", Kind: vit.KindGEMMIn}, true
	case "merge.w":
		return vit.Site{Block: s.Block, Name: "merge.in", Kind: vit.KindGEMMIn}, true
	case "patch.w":
		return vit.Site{Block: -1, Name: "patch.in", Kind: vit.KindGEMMIn}, true
	case "head.w":
		return vit.Site{Block: -1, Name: "head.in", Kind: vit.KindGEMMIn}, true
	}
	return vit.Site{}, false
}

// CalibOptions configures Quantize.
type CalibOptions struct {
	Bits   int
	Regime Regime
	// Images is the calibration set; the paper uses 32 images.
	Images []*tensor.Tensor
	// MaxSamplesPerSite caps the per-site reservoir (0 = default 32768).
	MaxSamplesPerSite int
}

// QuantizedModel is a model prepared for quantized inference: a clone
// with fake-quantized weights plus per-site activation quantizers.
//
// Concurrency: a QuantizedModel is immutable after Quantize returns, and
// Forward/ForwardOpts/ForwardBatch are safe for concurrent use by
// multiple goroutines. The contract rests on three audited properties
// (each covered by TestQuantizedForwardConcurrent):
//
//   - vit.Model.Forward never mutates model parameters or the input
//     image — every intermediate lives in per-call tensors;
//   - every TensorQuantizer.Apply implementation (QUQ and the baselines)
//     reads only calibration-time state and clones its input;
//   - Acts is written once during Quantize and only read afterwards.
//
// Callers must not mutate Model, Acts or quantizer internals after
// sharing the model between goroutines. The one documented exception is
// the integer-path engine: its pointer is atomic, so SetIntPath may
// install or remove the engine while Forward calls are in flight, and
// each forward pass uses whichever engine it loads at entry.
type QuantizedModel struct {
	Model  vit.Model
	Bits   int
	Regime Regime
	Method string
	// Acts maps site keys to their activation quantizers.
	Acts map[string]TensorQuantizer
	// WeightParams maps weight-site keys to the exact quantizer
	// parameters used to fake-quantize that weight tensor, for methods
	// that report them (see WeightParamsRecorder); nil otherwise.
	WeightParams map[string]*quant.Params

	// engine is the optional integer forward engine; see SetIntPath.
	engine atomic.Pointer[IntEngine]
}

// SetIntPath installs (on=true) or removes (on=false) the fully-integer
// weight path: every weight GEMM runs on resident pre-shifted int64
// operands through the tensor kernel layer instead of rehydrating
// weights to float64. Enabling is all-or-nothing — it fails unless every
// weight site can be prepared (QUQ method with recorded weight params,
// QUQ activation quantizers on every GEMM input, accumulators within
// bounds). The toggle is safe under concurrent Forward traffic.
func (q *QuantizedModel) SetIntPath(on bool) error {
	if !on {
		q.engine.Store(nil)
		return nil
	}
	e, err := NewIntEngine(q)
	if err != nil {
		return err
	}
	q.engine.Store(e)
	return nil
}

// IntPath reports whether the integer forward engine is installed.
func (q *QuantizedModel) IntPath() bool { return q.engine.Load() != nil }

// Quantize calibrates method on m over the given images and returns the
// quantized model. The input model is not modified.
func Quantize(m vit.Model, method Method, opts CalibOptions) (*QuantizedModel, error) {
	if opts.Bits < 3 {
		return nil, fmt.Errorf("ptq: bit-width %d too small", opts.Bits)
	}
	if len(opts.Images) == 0 {
		return nil, fmt.Errorf("ptq: no calibration images")
	}
	stats := Collect(m, opts.Images, opts.MaxSamplesPerSite)

	qm := &QuantizedModel{
		Model:  m.Clone(),
		Bits:   opts.Bits,
		Regime: opts.Regime,
		Method: method.Name(),
		Acts:   make(map[string]TensorQuantizer, len(stats)),
	}
	for key, st := range stats {
		if !opts.Regime.covers(st.Site.Kind) {
			continue
		}
		qm.Acts[key] = method.CalibrateActivation(st, opts.Bits)
	}
	if rec, ok := method.(WeightParamsRecorder); ok {
		qm.WeightParams = make(map[string]*quant.Params)
		rec.RecordWeightParams(func(site vit.Site, p *quant.Params) {
			qm.WeightParams[site.Key()] = p
		})
		defer rec.RecordWeightParams(nil)
	}
	aware, isAware := method.(InputAwareWeightQuantizer)
	qm.Model.ForEachWeight(func(site vit.Site, l *vit.Linear) {
		if isAware {
			if inSite, ok := weightInputSite(site); ok {
				if st, ok := stats[inSite.Key()]; ok {
					if sq := st.ChanMeanSq(); sq != nil {
						aware.QuantizeWeightAware(site, l.W, opts.Bits, sq)
						return
					}
				}
			}
		}
		method.QuantizeWeight(site, l.W, opts.Bits)
	})
	return qm, nil
}

// Forward runs quantized inference on one image.
func (q *QuantizedModel) Forward(img *tensor.Tensor) *tensor.Tensor {
	return q.ForwardOpts(img, vit.ForwardOpts{})
}

// ForwardOpts runs quantized inference with extra instrumentation (the
// attention sink for Figure 7). Any Tap in opts is applied after the
// quantizer at each site.
func (q *QuantizedModel) ForwardOpts(img *tensor.Tensor, opts vit.ForwardOpts) *tensor.Tensor {
	if opts.Engine == nil {
		if e := q.engine.Load(); e != nil {
			opts.Engine = e
		}
	}
	outer := opts.Tap
	opts.Tap = func(site vit.Site, x *tensor.Tensor) *tensor.Tensor {
		if tq, ok := q.Acts[site.Key()]; ok {
			x = tq.Apply(x)
		}
		if outer != nil {
			if y := outer(site, x); y != nil {
				x = y
			}
		}
		return x
	}
	return q.Model.Forward(img, opts)
}

// Classifier is anything that maps an image to logits: both vit.Model
// (via ModelClassifier) and *QuantizedModel satisfy it.
type Classifier interface {
	Forward(img *tensor.Tensor) *tensor.Tensor
}

// ModelClassifier adapts a plain FP32 model to the Classifier interface.
type ModelClassifier struct{ M vit.Model }

// Forward implements Classifier.
func (c ModelClassifier) Forward(img *tensor.Tensor) *tensor.Tensor {
	return c.M.Forward(img, vit.ForwardOpts{})
}

// Agreement returns the fraction of images on which the two classifiers
// produce the same argmax — this repo's substitution for ImageNet top-1
// when the reference model's own predictions define the labels (see
// DESIGN.md). An empty image slice returns 0, never NaN: serving and
// experiment code feed request-derived slices here, and a 0/0 NaN would
// poison every downstream aggregate.
func Agreement(ref, q Classifier, images []*tensor.Tensor) float64 {
	if len(images) == 0 {
		return 0
	}
	same := 0
	for _, img := range images {
		if ref.Forward(img).ArgMax() == q.Forward(img).ArgMax() {
			same++
		}
	}
	return float64(same) / float64(len(images))
}

// Accuracy returns top-1 accuracy of the classifier on labelled samples.
// An empty or length-mismatched (images, labels) pair returns 0, never
// NaN — mismatches are caller bugs, but a metric that silently turns the
// whole table into NaN is worse than one that reads as zero.
func Accuracy(c Classifier, images []*tensor.Tensor, labels []int) float64 {
	if len(images) == 0 || len(images) != len(labels) {
		return 0
	}
	hit := 0
	for i, img := range images {
		if c.Forward(img).ArgMax() == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(images))
}

// UniformQuantizer is the shared symmetric-uniform activation quantizer
// used by several methods.
type UniformQuantizer struct {
	Delta float64
	Bits  int
}

// Apply implements TensorQuantizer.
func (u UniformQuantizer) Apply(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	lo := -(int64(1) << (u.Bits - 1))
	hi := int64(1)<<(u.Bits-1) - 1
	d := out.Data()
	for i, v := range d {
		q := int64(math.RoundToEven(v / u.Delta))
		if q < lo {
			q = lo
		}
		if q > hi {
			q = hi
		}
		d[i] = float64(q) * u.Delta
	}
	return out
}

// SearchUniformDelta returns the Δ in {α·absmax/(2^(b−1)−1)} over the
// grid minimizing MSE on xs — the grid-search step the paper applies to
// every method ("the optimization techniques used in QUQ are also
// applied"). An empty grid means {1.0}.
func SearchUniformDelta(xs []float64, bits int, grid []float64) float64 {
	absmax := 0.0
	for _, v := range xs {
		if a := math.Abs(v); a > absmax {
			absmax = a
		}
	}
	if absmax == 0 {
		return 1
	}
	if len(grid) == 0 {
		grid = []float64{1}
	}
	base := absmax / float64(int64(1)<<(bits-1)-1)
	best, bestMSE := base, math.Inf(1)
	for _, alpha := range grid {
		if alpha <= 0 {
			continue
		}
		d := base * alpha
		var mse float64
		lo := -(int64(1) << (bits - 1))
		hi := int64(1)<<(bits-1) - 1
		for _, v := range xs {
			q := int64(math.RoundToEven(v / d))
			if q < lo {
				q = lo
			}
			if q > hi {
				q = hi
			}
			e := v - float64(q)*d
			mse += e * e
		}
		if mse < bestMSE {
			best, bestMSE = d, mse
		}
	}
	return best
}

// DefaultAlphaGrid is the clipping-search grid shared by the methods.
var DefaultAlphaGrid = []float64{0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00}
