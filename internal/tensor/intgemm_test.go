package tensor

import (
	"testing"

	"quq/internal/rng"
)

// randInt64s fills an n-element slice with signed integers, planting
// zeros and occasional full-width values so both the typical QUB range
// (small pre-shifted magnitudes) and the wrap-around regime (int64
// overflow, where bit-exactness mod 2^64 is what the kernels promise)
// are exercised.
func randInt64s(src *rng.Source, n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		switch {
		case src.Float64() < 0.1:
			s[i] = 0
		case src.Float64() < 0.15:
			s[i] = int64(src.Uint64()) // full-width: exercises wrap
		default:
			s[i] = int64(src.Intn(1<<22)) - 1<<21
		}
	}
	return s
}

// randNarrowInt64s fills an n-element slice with int32-range values —
// the regime pickIntMicro routes to the narrow micro-kernel — planting
// zeros and the extreme int32 boundary values so the narrow kernel's
// sign handling is exercised at its edges.
func randNarrowInt64s(src *rng.Source, n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		switch {
		case src.Float64() < 0.1:
			s[i] = 0
		case src.Float64() < 0.15:
			if src.Float64() < 0.5 {
				s[i] = -1 << 31 // int32 min: narrow, maximal magnitude
			} else {
				s[i] = 1<<31 - 1 // int32 max
			}
		default:
			s[i] = int64(src.Intn(1<<22)) - 1<<21
		}
	}
	return s
}

func assertInt64Equal(t *testing.T, name string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %d, want %d", name, i, got[i], want[i])
		}
	}
}

func TestIntMatMulIntoMatchesRef(t *testing.T) {
	src := rng.New(21)
	for _, fill := range []func(*rng.Source, int) []int64{randInt64s, randNarrowInt64s} {
		for _, s := range gemmShapes {
			a := fill(src, s.m*s.k)
			b := fill(src, s.k*s.n)
			got := make([]int64, s.m*s.n)
			want := make([]int64, s.m*s.n)
			IntMatMulInto(got, a, b, s.m, s.k, s.n)
			IntMatMulRef(want, a, b, s.m, s.k, s.n)
			assertInt64Equal(t, "IntMatMulInto", got, want)
		}
	}
}

func TestIntMatMulTIntoMatchesRef(t *testing.T) {
	src := rng.New(22)
	for _, fill := range []func(*rng.Source, int) []int64{randInt64s, randNarrowInt64s} {
		for _, s := range gemmShapes {
			a := fill(src, s.m*s.k)
			b := fill(src, s.n*s.k)
			got := make([]int64, s.m*s.n)
			want := make([]int64, s.m*s.n)
			IntMatMulTInto(got, a, b, s.m, s.k, s.n)
			IntMatMulTRef(want, a, b, s.m, s.k, s.n)
			assertInt64Equal(t, "IntMatMulTInto", got, want)
		}
	}
}

// TestIntMicroDispatchBoundary pins the narrow/wide dispatch edge: a
// single value of magnitude 2^31 (one past int32) anywhere in either
// operand must force the wide kernel, while all-int32 operands (down to
// int32 min itself) stay narrow — and both must match the reference
// exactly. Also verifies the scan inspects only the used prefix of
// oversized operand slices.
func TestIntMicroDispatchBoundary(t *testing.T) {
	const m, k, n = 8, 12, 8
	src := rng.New(25)
	a := randNarrowInt64s(src, m*k)
	b := randNarrowInt64s(src, k*n)
	check := func(label string) {
		t.Helper()
		got := make([]int64, m*n)
		want := make([]int64, m*n)
		IntMatMulInto(got, a, b, m, k, n)
		IntMatMulRef(want, a, b, m, k, n)
		assertInt64Equal(t, label, got, want)
	}
	if !int64sNarrow(a) || !int64sNarrow(b) {
		t.Fatal("fixture operands not narrow")
	}
	check("all narrow")
	a[m*k/2] = 1 << 31 // just wide
	if int64sNarrow(a) {
		t.Fatal("2^31 classified as narrow")
	}
	check("one wide lhs")
	a[m*k/2] = -1 << 31 // int32 min: narrow again
	b[k*n/2] = -1<<31 - 1
	if int64sNarrow(b) {
		t.Fatal("-2^31-1 classified as narrow")
	}
	check("one wide rhs")

	// A wide value beyond the used prefix must not affect dispatch.
	aLong := append(append([]int64{}, a...), int64(1)<<40)
	if !int64sNarrow(aLong[:m*k]) {
		t.Fatal("prefix scan leaked past m*k")
	}
	got := make([]int64, m*n)
	want := make([]int64, m*n)
	IntMatMulInto(got, aLong, b, m, k, n)
	IntMatMulRef(want, aLong, b, m, k, n)
	assertInt64Equal(t, "oversized operand", got, want)
}

// TestIntReferenceKernelSeam verifies the shared bench seam also routes
// the integer entry points through the naive loops, bit-identically.
func TestIntReferenceKernelSeam(t *testing.T) {
	src := rng.New(23)
	a := randInt64s(src, 9*17)
	b := randInt64s(src, 17*33)
	tiled := make([]int64, 9*33)
	IntMatMulInto(tiled, a, b, 9, 17, 33)
	SetReferenceKernels(true)
	defer SetReferenceKernels(false)
	ref := make([]int64, 9*33)
	IntMatMulInto(ref, a, b, 9, 17, 33)
	assertInt64Equal(t, "int reference seam", ref, tiled)
}

// TestIntParallelMatchesSerial raises the intra-op budget and checks
// that an integer GEMM above the size cutover — which then actually
// splits across workers — produces identical results to the serial
// kernel. (For int64 this is guaranteed by associativity mod 2^64; the
// test guards the row-partitioning bookkeeping.)
func TestIntParallelMatchesSerial(t *testing.T) {
	SetIntraOpWorkers(4)
	t.Cleanup(func() { SetIntraOpWorkers(1) })
	src := rng.New(24)
	// 64·128·80 = 655360 MACs, above parallelMinMACs with 64 rows to split.
	a := randInt64s(src, 64*128)
	b := randInt64s(src, 128*80)
	bt := randInt64s(src, 80*128)
	want := make([]int64, 64*80)
	wantT := make([]int64, 64*80)
	IntMatMulRef(want, a, b, 64, 128, 80)
	IntMatMulTRef(wantT, a, bt, 64, 128, 80)
	for round := 0; round < 4; round++ {
		got := make([]int64, 64*80)
		IntMatMulInto(got, a, b, 64, 128, 80)
		assertInt64Equal(t, "parallel IntMatMulInto", got, want)
		IntMatMulTInto(got, a, bt, 64, 128, 80)
		assertInt64Equal(t, "parallel IntMatMulTInto", got, wantT)
	}
}

func TestIntMatMulIntoRejectsBadDst(t *testing.T) {
	a := make([]int64, 3*4)
	b := make([]int64, 4*5)
	for name, fn := range map[string]func(){
		"short dst":   func() { IntMatMulInto(make([]int64, 3*4), a, b, 3, 4, 5) },
		"short lhs":   func() { IntMatMulInto(make([]int64, 3*5), a[:11], b, 3, 4, 5) },
		"short rhs":   func() { IntMatMulInto(make([]int64, 3*5), a, b[:19], 3, 4, 5) },
		"neg dim":     func() { IntMatMulInto(make([]int64, 3*5), a, b, -3, 4, 5) },
		"aliasing":    func() { IntMatMulInto(b, a, b, 3, 4, 5) },
		"short rhs T": func() { IntMatMulTInto(make([]int64, 3*5), a, b[:19], 3, 4, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestArenaInt64Reuse mirrors TestArenaReuse for the int64 scratch pool.
func TestArenaInt64Reuse(t *testing.T) {
	ar := GetArena()
	defer ar.Release()
	x := ar.Int64(24)
	x[0] = 7
	base := &x[0]
	ar.PutInt64(x)

	// Same length comes back as the same storage, contents unspecified.
	y := ar.Int64(24)
	if &y[0] != base {
		t.Fatal("Int64 did not recycle the PutInt64 slice")
	}
	if y[0] != 7 {
		t.Fatal("Int64 should not clear recycled storage")
	}
	ar.PutInt64(y)

	// A different length is a miss: fresh storage.
	w := ar.Int64(25)
	if &w[0] == base {
		t.Fatal("Int64 recycled across different lengths")
	}
}

// FuzzIntGEMMEquivalence fuzzes randomized shapes and full-range int64
// contents through both integer entry points, asserting exact equality
// against the naive reference oracle — serial and with the parallel
// budget raised. Wrapping overflow is in scope: int64 arithmetic mod
// 2^64 must agree between kernels for any inputs.
func FuzzIntGEMMEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(5))
	f.Add(int64(2), uint8(0), uint8(1), uint8(9))
	f.Add(int64(3), uint8(1), uint8(0), uint8(1))
	f.Add(int64(4), uint8(17), uint8(16), uint8(17))
	f.Add(int64(5), uint8(65), uint8(33), uint8(70))
	f.Fuzz(func(t *testing.T, seed int64, m8, k8, n8 uint8) {
		m, k, n := int(m8%80), int(k8%80), int(n8%80)
		src := rng.New(uint64(seed))
		// Odd seeds pin the operands to int32 range so the narrow
		// micro-kernel is fuzzed as systematically as the wide one.
		fill := randInt64s
		if seed%2 != 0 {
			fill = randNarrowInt64s
		}
		a := fill(src, m*k)
		b := fill(src, k*n)
		bt := fill(src, n*k)
		wantMM := make([]int64, m*n)
		wantMMT := make([]int64, m*n)
		IntMatMulRef(wantMM, a, b, m, k, n)
		IntMatMulTRef(wantMMT, a, bt, m, k, n)

		check := func(label string) {
			t.Helper()
			got := make([]int64, m*n)
			IntMatMulInto(got, a, b, m, k, n)
			assertInt64Equal(t, label+" IntMatMulInto", got, wantMM)
			IntMatMulTInto(got, a, bt, m, k, n)
			assertInt64Equal(t, label+" IntMatMulTInto", got, wantMMT)
		}
		check("serial")
		SetIntraOpWorkers(4)
		defer SetIntraOpWorkers(1)
		check("parallel")
	})
}
