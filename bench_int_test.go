// Integer kernel-layer benchmarks: the resident-operand QUB GEMM against
// the pre-integer-kernel-layer scalar path, plus the end-to-end int-path
// forward against the float path. Results land in
// artifacts/BENCH_int.json.
//
// The "before" side is measured in the same run as the "after" side: a
// line-for-line replica of the pre-PR accel intGEMM (per-call decode of
// both QUB operand streams into freshly allocated vx/vw, the retained
// 4x4 scalar loops, fresh Acc/Out per call) lives below in test code, so
// the speedup ratio is immune to machine-load drift between sessions —
// the same structure bench_kernels_test.go uses for the float layer.
package quq_test

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"quq/internal/accel"
	"quq/internal/dist"
	"quq/internal/ptq"
	"quq/internal/quant"
	"quq/internal/qub"
	"quq/internal/rng"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// intKernelShapes are the integer-GEMM benchmark shapes: the ViT-Nano
// block GEMMs for context, and the proxy-config sizes the acceptance
// gate holds to (Gate: the measured speedup over the scalar baseline
// must be >= intGEMMSpeedupFloor there).
var intKernelShapes = []struct {
	Name    string
	M, K, N int
	Gate    bool
}{
	{"qkv", 17, 48, 144, false},
	{"mlp_fc1", 17, 48, 192, false},
	{"mlp_fc2", 17, 192, 48, false},
	{"proxy_96x384x96", 96, 384, 96, true},
	{"proxy_64x256x128", 64, 256, 128, true},
}

// intGEMMSpeedupFloor is the acceptance floor for the gated shapes.
const intGEMMSpeedupFloor = 2.0

// intBenchOperands is one calibrated, QUB-encoded [m,k]·[k,n] operand
// pair plus the prepared resident weight and the requantization unit —
// everything the steady-state serve path holds per layer.
type intBenchOperands struct {
	m, k, n int
	x, w    []qub.Word
	rx, rw  qub.Registers
	prep    *accel.PreparedOperand
	qu      *accel.QuantizeUnit
}

func buildIntOperands(tb testing.TB, bits, m, k, n int, seed uint64) *intBenchOperands {
	tb.Helper()
	px := quant.PRA(dist.Sample(dist.PostGELU, 4096, rng.New(seed)), bits, quant.DefaultPRAOptions())
	pw := quant.PRA(dist.Sample(dist.QueryWeight, 4096, rng.New(seed+1)), bits, quant.DefaultPRAOptions())
	ql, err := accel.NewQuantizedLinear(px, pw)
	if err != nil {
		tb.Fatal(err)
	}
	qu, err := accel.NewQuantizeUnit(pw, ql.AccUnit())
	if err != nil {
		tb.Fatal(err)
	}
	ops := &intBenchOperands{
		m: m, k: k, n: n,
		x:  qub.EncodeTensor(px, dist.Sample(dist.PostGELU, m*k, rng.New(seed+2))),
		w:  qub.EncodeTensor(pw, dist.Sample(dist.QueryWeight, k*n, rng.New(seed+3))),
		rx: ql.XRegs, rw: ql.WRegs,
		qu: qu,
	}
	ops.prep, err = accel.PrepareWords(ops.w, ops.rw, k, n)
	if err != nil {
		tb.Fatal(err)
	}
	return ops
}

// refDecodeWords replays the pre-PR per-call operand decode: one
// qub.Decode plus the Eq. (5) subrange shift per element, into a fresh
// slice.
func refDecodeWords(ws []qub.Word, r qub.Registers) []int64 {
	dst := make([]int64, len(ws))
	for i, w := range ws {
		d := qub.Decode(w, r)
		dst[i] = int64(d.D) << d.Nsh
	}
	return dst
}

// refIntGEMM is a line-for-line replica of the pre-kernel-layer accel
// intGEMM: decode both QUB streams into freshly allocated int64 slices,
// run the retained scalar loops, allocate Acc/Out, scan the accumulator
// width and requantize. It is the timing baseline and the bit-identity
// oracle for the optimized path.
func refIntGEMM(ops *intBenchOperands) ([]qub.Word, []int64) {
	vx := refDecodeWords(ops.x, ops.rx)
	vw := refDecodeWords(ops.w, ops.rw)
	acc := make([]int64, ops.m*ops.n)
	accel.ScalarIntGEMM(acc, vx, vw, ops.m, ops.k, ops.n)
	out := make([]qub.Word, ops.m*ops.n)
	for i, a := range acc {
		out[i] = qub.Encode(ops.qu.Params, ops.qu.Requantize(a))
	}
	return out, acc
}

// measurePairedNs times two closures interleaved — each round runs a
// burst of both, order alternating — so slow machine-load drift cancels
// out of the ratio (see measureForwardPaired).
func measurePairedNs(rounds, opsPerRound int, ref, opt func()) (refNs, optNs float64) {
	ref()
	opt()
	var tRef, tOpt time.Duration
	for r := 0; r < rounds; r++ {
		runRef := func() {
			t0 := time.Now()
			for i := 0; i < opsPerRound; i++ {
				ref()
			}
			tRef += time.Since(t0)
		}
		runOpt := func() {
			t0 := time.Now()
			for i := 0; i < opsPerRound; i++ {
				opt()
			}
			tOpt += time.Since(t0)
		}
		if r%2 == 0 {
			runRef()
			runOpt()
		} else {
			runOpt()
			runRef()
		}
	}
	n := float64(rounds * opsPerRound)
	return float64(tRef.Nanoseconds()) / n, float64(tOpt.Nanoseconds()) / n
}

// requantGrid16 snaps a logit onto the 2^-16 grid, normalizing signed
// zero. The integer path computes the exact integer sum then scales
// once; the float path rounds per accumulation step; on this grid both
// must agree exactly (the cross-backend contract the chaos gate also
// holds replicas to).
func requantGrid16(v float64) float64 {
	q := math.RoundToEven(math.Ldexp(v, 16))
	if q == 0 {
		return 0
	}
	return math.Ldexp(q, -16)
}

// BenchmarkIntKernels measures the resident-operand integer GEMM against
// the pre-PR scalar intGEMM replica, verifies the requantized QUB
// outputs are bit-identical, times the end-to-end int-path forward
// against the float path on the same quantized model, and records
// everything in artifacts/BENCH_int.json. The gated proxy shapes must
// clear intGEMMSpeedupFloor or the benchmark fails.
func BenchmarkIntKernels(b *testing.B) {
	type shapeResult struct {
		Shape            string  `json:"shape"`
		M                int     `json:"m"`
		K                int     `json:"k"`
		N                int     `json:"n"`
		ScalarNs         float64 `json:"scalar_ns_per_op"`
		KernelNs         float64 `json:"kernel_ns_per_op"`
		Speedup          float64 `json:"speedup"`
		Gated            bool    `json:"gated"`
		RequantIdentical bool    `json:"requantized_out_bit_identical"`
	}
	const bits = 6
	arr := accel.DefaultArray(bits)
	results := make([]shapeResult, len(intKernelShapes))
	for si, s := range intKernelShapes {
		ops := buildIntOperands(b, bits, s.M, s.K, s.N, uint64(100+10*si))
		res := &results[si]
		*res = shapeResult{Shape: s.Name, M: s.M, K: s.K, N: s.N, Gated: s.Gate}

		// Bit-identity gate before any timing is worth recording: the
		// kernel-layer resident-operand path must reproduce the scalar
		// replica's requantized QUB words and raw accumulators exactly.
		wantOut, wantAcc := refIntGEMM(ops)
		got, err := arr.GEMMPrepared(ops.x, ops.rx, ops.prep, s.M, s.K, ops.qu)
		if err != nil {
			b.Fatal(err)
		}
		res.RequantIdentical = true
		for i := range wantOut {
			if got.Out[i] != wantOut[i] || got.Acc[i] != wantAcc[i] {
				res.RequantIdentical = false
				b.Errorf("%s elem %d: kernel out %#x acc %d, scalar reference %#x acc %d",
					s.Name, i, got.Out[i], got.Acc[i], wantOut[i], wantAcc[i])
				break
			}
		}

		res.ScalarNs, res.KernelNs = measurePairedNs(8, 2,
			func() { refIntGEMM(ops) },
			func() {
				if _, err := arr.GEMMPrepared(ops.x, ops.rx, ops.prep, s.M, s.K, ops.qu); err != nil {
					b.Fatal(err)
				}
			})
		if res.KernelNs > 0 {
			res.Speedup = res.ScalarNs / res.KernelNs
		}
		b.Run("gemm/"+s.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := arr.GEMMPrepared(ops.x, ops.rx, ops.prep, s.M, s.K, ops.qu); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ScalarNs, "scalar-ns/op")
			b.ReportMetric(res.KernelNs, "kernel-ns/op")
			b.ReportMetric(res.Speedup, "speedup")
		})
		if s.Gate && res.Speedup < intGEMMSpeedupFloor {
			b.Errorf("%s: integer-GEMM speedup %.2fx below the %.1fx acceptance floor",
				s.Name, res.Speedup, intGEMMSpeedupFloor)
		}
	}

	// End-to-end: the int-path forward against the float path on the same
	// quantized ViT-Nano. The logits must agree on the 2^-16 requantized
	// grid with identical argmax; the timing ratio is recorded (the weight
	// GEMMs are a fraction of the forward, so this ratio is informational,
	// not gated).
	qm, img := benchQuantizedModel(b)
	eng, err := ptq.NewIntEngine(qm)
	if err != nil {
		b.Fatal(err)
	}
	intOpts := vit.ForwardOpts{Engine: eng}
	floatLogits := qm.Forward(img).Clone()
	intLogits := qm.ForwardOpts(img, intOpts)
	gridIdentical := intLogits.ArgMax() == floatLogits.ArgMax()
	for i, v := range intLogits.Data() {
		if math.Float64bits(requantGrid16(v)) != math.Float64bits(requantGrid16(floatLogits.Data()[i])) {
			gridIdentical = false
			b.Errorf("logit %d: int path %v, float path %v differ on the 2^-16 grid", i, v, floatLogits.Data()[i])
		}
	}
	if !gridIdentical {
		b.Error("int-path logits not identical to float path on the requantized grid")
	}
	floatNs, intNs := measurePairedNs(12, 3,
		func() { qm.Forward(img) },
		func() { qm.ForwardOpts(img, intOpts) })
	b.Run("forward/paired", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qm.Forward(img)
		}
		b.ReportMetric(floatNs, "float-ns/fwd")
		b.ReportMetric(intNs, "int-ns/fwd")
		b.ReportMetric(floatNs/intNs, "speedup")
	})

	artifact := struct {
		Note               string        `json:"note"`
		Workers            int           `json:"intra_op_workers"`
		SpeedupFloor       float64       `json:"gated_speedup_floor"`
		GEMM               []shapeResult `json:"gemm"`
		ForwardFloatNs     float64       `json:"forward_float_ns_per_op"`
		ForwardIntNs       float64       `json:"forward_int_ns_per_op"`
		ForwardSpeedup     float64       `json:"forward_int_speedup"`
		LogitsGridIdentity bool          `json:"logits_identical_on_requantized_grid"`
	}{
		Note: "scalar side replayed in the same run by a line-for-line replica of the pre-PR " +
			"accel intGEMM (per-call QUB decode + scalar loops + fresh Acc/Out), so the " +
			"speedup ratio is immune to machine-load drift; the forward ratio covers the " +
			"whole pass, of which the weight GEMMs are only a fraction",
		Workers:            tensor.IntraOpWorkers(),
		SpeedupFloor:       intGEMMSpeedupFloor,
		GEMM:               results,
		ForwardFloatNs:     floatNs,
		ForwardIntNs:       intNs,
		ForwardSpeedup:     floatNs / intNs,
		LogitsGridIdentity: gridIdentical,
	}
	buf, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll("artifacts", 0o755); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("artifacts", "BENCH_int.json"), append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("int GEMM proxy speedups gated at %.1fx; forward float %.0f ns vs int %.0f ns (%.2fx), grid-identical=%v",
		intGEMMSpeedupFloor, floatNs, intNs, floatNs/intNs, gridIdentical)
}
