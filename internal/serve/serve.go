// Package serve is quq-serve's serving layer: a concurrent, batched
// HTTP/JSON inference service over the repo's PTQ stack. It amortizes
// the calibrate-once artifact the paper's whole premise rests on — a
// ptq.QuantizedModel is built exactly once per (model, method, bits,
// regime) key by a singleflight registry, then shared read-only across
// every request (the concurrency contract documented on
// ptq.QuantizedModel and vit.Model).
//
// The pieces:
//
//   - Registry (registry.go): lazily builds and caches quantized models,
//     deduplicating concurrent first requests so each key calibrates
//     exactly once;
//   - Batcher (batcher.go): a micro-batching scheduler — requests land
//     in a bounded queue, are coalesced per model key under a
//     max-batch / max-linger deadline, and execute on a GOMAXPROCS-sized
//     worker pool;
//   - Governor (governor.go): the occupancy-adaptive scheduler — it
//     watches batch occupancy and queue depth over a sliding window
//     (via an injectable chaos.Clock), trades the linger and per-batch
//     intra-op worker grants against batching width, and estimates
//     queue waits for deadline-aware admission control (requests whose
//     estimated wait exceeds their latency budget shed with 429 before
//     taking a queue slot);
//   - Server (server.go): the HTTP surface (POST /v1/classify,
//     POST /v1/quantize, GET /models, /healthz, /metrics) with panic
//     recovery, request size limits, per-request timeouts, queue
//     backpressure (429) and graceful drain;
//   - metrics (metrics/): the stdlib-only instrumentation behind
//     /metrics.
package serve

import (
	"quq/internal/serve/metrics"
)

// Metrics bundles every instrument the serving layer updates; the
// /metrics endpoint renders the underlying registry.
type Metrics struct {
	Registry *metrics.Registry

	// HTTP surface.
	Requests *metrics.Counter   // requests accepted by any endpoint
	Failures *metrics.Counter   // responses with a 5xx status
	Rejected *metrics.Counter   // 429s from queue backpressure
	Panics   *metrics.Counter   // handler/worker panics recovered
	Latency  *metrics.Histogram // request wall time, seconds

	// Micro-batching.
	Images     *metrics.Counter   // images classified
	BatchSize  *metrics.Histogram // images per dispatched batch
	QueueDepth *metrics.Gauge     // items admitted and not yet finished
	Abandoned  *metrics.Counter   // queued items released after their submitter gave up

	// Occupancy-adaptive scheduling (governor.go).
	IntraopWorkers *metrics.Gauge     // per-batch intra-op worker allocation the governor chose
	Occupancy      *metrics.Histogram // batch occupancy (images / max-batch) per dispatched batch
	Shed           *metrics.Counter   // requests shed by latency-budget admission control (429)

	// Model registry.
	CacheHits    *metrics.Counter   // registry lookups that found an entry
	CacheMisses  *metrics.Counter   // lookups that triggered a calibration
	BuildSeconds *metrics.Histogram // calibration wall time, seconds

	// Durable snapshot store (snapshot.go).
	SnapshotLoads       *metrics.Counter // entries warm-restarted from disk
	SnapshotWrites      *metrics.Counter // snapshots committed to disk
	SnapshotErrors      *metrics.Counter // snapshot encode/write/load failures
	SnapshotQuarantined *metrics.Counter // snapshot files quarantined (bad digest or payload)
	SnapshotInstalls    *metrics.Counter // snapshots installed via POST /v1/snapshot (anti-entropy repair)
}

// NewMetrics builds the full instrument set on a fresh registry.
func NewMetrics() *Metrics {
	r := metrics.NewRegistry()
	return &Metrics{
		Registry: r,

		Requests: r.NewCounter("quq_serve_requests_total", "HTTP requests accepted"),
		Failures: r.NewCounter("quq_serve_failures_total", "HTTP responses with status >= 500"),
		Rejected: r.NewCounter("quq_serve_rejected_total", "requests rejected by queue backpressure (429)"),
		Panics:   r.NewCounter("quq_serve_panics_total", "panics recovered in handlers or batch workers"),
		Latency:  r.NewHistogram("quq_serve_request_seconds", "request latency in seconds", metrics.LatencyBuckets()),

		Images:     r.NewCounter("quq_serve_images_total", "images classified"),
		BatchSize:  r.NewHistogram("quq_serve_batch_size", "images per dispatched micro-batch", metrics.SizeBuckets()),
		QueueDepth: r.NewGauge("quq_serve_queue_depth", "images admitted and not yet finished"),
		Abandoned:  r.NewCounter("quq_serve_abandoned_total", "queued items released after their submitter's context expired"),

		IntraopWorkers: r.NewGauge("quq_serve_intraop_workers", "per-batch intra-op worker allocation chosen by the governor"),
		Occupancy:      r.NewHistogram("quq_serve_occupancy", "batch occupancy (images / max-batch) per dispatched micro-batch", metrics.FractionBuckets()),
		Shed:           r.NewCounter("quq_serve_shed_total", "requests shed by latency-budget admission control (429)"),

		CacheHits:    r.NewCounter("quq_serve_model_cache_hits_total", "registry lookups served from cache"),
		CacheMisses:  r.NewCounter("quq_serve_model_cache_misses_total", "registry lookups that calibrated a model"),
		BuildSeconds: r.NewHistogram("quq_serve_model_build_seconds", "model calibration wall time in seconds", metrics.LatencyBuckets()),

		SnapshotLoads:       r.NewCounter("quq_serve_snapshot_loads_total", "registry entries warm-restarted from the snapshot dir"),
		SnapshotWrites:      r.NewCounter("quq_serve_snapshot_writes_total", "snapshots committed to the snapshot dir"),
		SnapshotErrors:      r.NewCounter("quq_serve_snapshot_errors_total", "snapshot encode, write or load failures"),
		SnapshotQuarantined: r.NewCounter("quq_serve_snapshot_quarantined_total", "snapshot files quarantined after failing digest or payload verification"),
		SnapshotInstalls:    r.NewCounter("quq_serve_snapshot_installs_total", "snapshots installed via POST /v1/snapshot"),
	}
}
