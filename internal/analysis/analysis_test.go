package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureLoader is shared across fixture tests: the stdlib source
// importer re-type-checks GOROOT packages per Loader, so one loader for
// the whole test binary keeps the suite fast. Fixtures are cached under
// distinct import paths, so sharing is safe.
var fixtureLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(".")
})

// wantRe matches a `// want "regex"` expectation comment. The optional
// +1 offset anchors the expectation to the following line, for findings
// on lines that cannot carry a trailing comment (e.g. a directive
// comment is itself the finding).
var wantRe = regexp.MustCompile("// want(\\+1)? `([^`]+)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// parseWants scans the fixture sources for expectation comments.
func parseWants(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				ln := i + 1
				if m[1] == "+1" {
					ln++
				}
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", e.Name(), i+1, m[2], err)
				}
				wants = append(wants, expectation{file: e.Name(), line: ln, re: re})
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<fixture> under importPath, runs the
// analyzer, and checks the diagnostics against the corpus's want
// comments: every finding must be expected and every expectation met.
func runFixture(t *testing.T, a *Analyzer, fixture, importPath string) {
	t.Helper()
	loader, err := fixtureLoader()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := loader.LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{a})
	wants := parseWants(t, dir)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestIntOnlyFixture(t *testing.T) {
	runFixture(t, IntOnly, "intonly", "quq/internal/accel")
}

func TestIntOnlyOutOfScope(t *testing.T) {
	// The same corpus under a non-datapath import path must be clean.
	loader, err := fixtureLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "intonly"), "quq/internal/intonlyelsewhere")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers(pkg, []*Analyzer{IntOnly}); len(diags) != 0 {
		t.Fatalf("intonly flagged an out-of-scope package: %v", diags)
	}
}

func TestPow2Fixture(t *testing.T) {
	runFixture(t, Pow2, "pow2", "quq/internal/pow2fixture")
}

func TestDetIterExperimentsScope(t *testing.T) {
	runFixture(t, DetIter, "detiter", "quq/internal/experiments")
}

func TestDetIterArtifactFileScope(t *testing.T) {
	runFixture(t, DetIter, "detiterartifacts", "quq/internal/detiterartifacts")
}

func TestErrDropFixture(t *testing.T) {
	runFixture(t, ErrDrop, "errdrop", "quq/internal/errdrop")
}

func TestPanicAuditFixture(t *testing.T) {
	runFixture(t, PanicAudit, "panicaudit", "quq/internal/panicaudit")
}

func TestPanicAuditSkipsMain(t *testing.T) {
	// A main package may panic freely; the check must skip it. The
	// panicaudit corpus is a library package, so reuse the errdrop corpus
	// trick is unavailable — instead verify via the real cmd tree when
	// present, or simply assert the scope rule on the fixture's Types.
	loader, err := fixtureLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "panicaudit"), "quq/internal/panicaudit2")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() == "main" {
		t.Fatal("fixture unexpectedly declares package main")
	}
}

func TestDocMissingFixture(t *testing.T) {
	runFixture(t, DocMissing, "docmissing", "quq/internal/docmissing")
}

func TestDocMissingMalformedFixture(t *testing.T) {
	runFixture(t, DocMissing, "docmissingbad", "quq/internal/docmissingbad")
}

func TestDocMissingConformingFixture(t *testing.T) {
	runFixture(t, DocMissing, "docmissingok", "quq/internal/docmissingok")
}

func TestDocMissingKnobFieldsFixture(t *testing.T) {
	runFixture(t, DocMissing, "docknob", "quq/internal/serve/docknobfixture")
}

func TestDocMissingKnobFieldsConformingFixture(t *testing.T) {
	runFixture(t, DocMissing, "docknobok", "quq/internal/shard/docknobok")
}

func TestDocMissingKnobFieldsOutOfScope(t *testing.T) {
	// The same knob corpus outside the serving tree must be clean: the
	// field rule scopes to "serve"/"shard" path segments only.
	loader, err := fixtureLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "docknob"), "quq/internal/docknobelsewhere")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers(pkg, []*Analyzer{DocMissing}); len(diags) != 0 {
		t.Fatalf("docmissing flagged knob fields outside the serving tree: %v", diags)
	}
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, HotAlloc, "hotalloc", "quq/internal/hotallocfixture")
}

func TestSleeplessFixture(t *testing.T) {
	runFixture(t, Sleepless, "sleepless", "quq/internal/sleeplessfixture")
}

// TestSleeplessMainExemption: a main package may wall-clock wait — the
// fixture contains bare Sleep/After calls and zero want comments.
func TestSleeplessMainExemption(t *testing.T) {
	runFixture(t, Sleepless, "sleeplessmain", "quq/internal/sleeplessmain")
}

func TestLockCheckFixture(t *testing.T) {
	runFixture(t, LockCheck, "lockcheck", "quq/internal/lockcheckfixture")
}

func TestLockCheckConformingFixture(t *testing.T) {
	runFixture(t, LockCheck, "lockcheckok", "quq/internal/lockcheckok")
}

func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, CtxFlow, "ctxflow", "quq/internal/ctxflowfixture")
}

func TestCtxFlowConformingFixture(t *testing.T) {
	runFixture(t, CtxFlow, "ctxflowok", "quq/internal/ctxflowok")
}

func TestLeakCheckFixture(t *testing.T) {
	runFixture(t, LeakCheck, "leakcheck", "quq/internal/leakcheckfixture")
}

func TestLeakCheckConformingFixture(t *testing.T) {
	runFixture(t, LeakCheck, "leakcheckok", "quq/internal/leakcheckok")
}

func TestAtomicMixFixture(t *testing.T) {
	runFixture(t, AtomicMix, "atomicmix", "quq/internal/atomicmixfixture")
}

func TestAtomicMixConformingFixture(t *testing.T) {
	runFixture(t, AtomicMix, "atomicmixok", "quq/internal/atomicmixok")
}

// TestMetricLabelFixture loads the corpus under an import path
// containing "metrics" so the exposition-format rule is armed alongside
// the everywhere-scoped constant-name rule.
func TestMetricLabelFixture(t *testing.T) {
	runFixture(t, MetricLabel, "metriclabel", "quq/internal/metricsfixture")
}

func TestMetricLabelConformingFixture(t *testing.T) {
	runFixture(t, MetricLabel, "metriclabelok", "quq/internal/metricsokfixture")
}

// TestMetricLabelExpositionScope: outside a metrics package the format
// rule disarms (debug Stringers print `{k=%d}` legitimately) but the
// constant-name rule still bites.
func TestMetricLabelExpositionScope(t *testing.T) {
	loader, err := fixtureLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "metriclabel"), "quq/internal/labelelsewhere")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{MetricLabel})
	if len(diags) != 1 {
		t.Fatalf("expected exactly the constant-name finding outside metrics scope, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "not a compile-time constant") {
		t.Fatalf("unexpected finding outside metrics scope: %v", diags[0])
	}
}

func TestDirectiveFixture(t *testing.T) {
	runFixture(t, Directives, "directive", "quq/internal/directivefixture")
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		token  string
		reason string
	}{
		{"//quq:float-ok decode boundary", true, "float-ok", "decode boundary"},
		{"//quq:float-ok", true, "float-ok", ""},
		{"//quq: missing token", false, "", ""},
		{"// quq:float-ok spaced prefix is prose", false, "", ""},
		{"// plain comment", false, "", ""},
	}
	for _, c := range cases {
		d, ok := parseDirective(c.text)
		if ok != c.ok || d.token != c.token || d.reason != c.reason {
			t.Errorf("parseDirective(%q) = %+v, %v; want token=%q reason=%q ok=%v",
				c.text, d, ok, c.token, c.reason, c.ok)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incompletely registered", a)
		}
		if names[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"intonly", "pow2", "detiter", "errdrop", "panicaudit", "hotalloc", "sleepless", "docmissing", "lockcheck", "ctxflow", "leakcheck", "atomicmix", "metriclabel", "fsynccheck", "directive"} {
		if !names[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
}

// fixtureCorpus names a testdata/src directory and the import path it
// must be loaded under (several analyzers scope by import path).
type fixtureCorpus struct {
	dir  string
	path string
}

// analyzerFixtures maps every registered analyzer to one corpus that
// must produce at least one finding (the true-positive proof) and one
// that must stay silent (the false-positive guard). Analyzers without a
// dedicated conforming twin use the cleanok corpus, which is written to
// pass the whole suite.
var analyzerFixtures = map[string]struct{ failing, passing fixtureCorpus }{
	"intonly":     {fixtureCorpus{"intonly", "quq/internal/accel"}, fixtureCorpus{"intonly", "quq/internal/intonlyelsewhere"}},
	"pow2":        {fixtureCorpus{"pow2", "quq/internal/pow2fixture"}, fixtureCorpus{"cleanok", "quq/internal/cleanok"}},
	"detiter":     {fixtureCorpus{"detiter", "quq/internal/experiments"}, fixtureCorpus{"cleanok", "quq/internal/cleanok"}},
	"errdrop":     {fixtureCorpus{"errdrop", "quq/internal/errdrop"}, fixtureCorpus{"cleanok", "quq/internal/cleanok"}},
	"panicaudit":  {fixtureCorpus{"panicaudit", "quq/internal/panicaudit"}, fixtureCorpus{"cleanok", "quq/internal/cleanok"}},
	"hotalloc":    {fixtureCorpus{"hotalloc", "quq/internal/hotallocfixture"}, fixtureCorpus{"cleanok", "quq/internal/cleanok"}},
	"sleepless":   {fixtureCorpus{"sleepless", "quq/internal/sleeplessfixture"}, fixtureCorpus{"sleeplessmain", "quq/internal/sleeplessmain"}},
	"docmissing":  {fixtureCorpus{"docmissing", "quq/internal/docmissing"}, fixtureCorpus{"docmissingok", "quq/internal/docmissingok"}},
	"lockcheck":   {fixtureCorpus{"lockcheck", "quq/internal/lockcheckfixture"}, fixtureCorpus{"lockcheckok", "quq/internal/lockcheckok"}},
	"ctxflow":     {fixtureCorpus{"ctxflow", "quq/internal/ctxflowfixture"}, fixtureCorpus{"ctxflowok", "quq/internal/ctxflowok"}},
	"leakcheck":   {fixtureCorpus{"leakcheck", "quq/internal/leakcheckfixture"}, fixtureCorpus{"leakcheckok", "quq/internal/leakcheckok"}},
	"atomicmix":   {fixtureCorpus{"atomicmix", "quq/internal/atomicmixfixture"}, fixtureCorpus{"atomicmixok", "quq/internal/atomicmixok"}},
	"metriclabel": {fixtureCorpus{"metriclabel", "quq/internal/metricsfixture"}, fixtureCorpus{"metriclabelok", "quq/internal/metricsokfixture"}},
	"fsynccheck":  {fixtureCorpus{"fsynccheck", "quq/internal/fsynccheckfixture"}, fixtureCorpus{"fsynccheckok", "quq/internal/fsynccheckok"}},
	"directive":   {fixtureCorpus{"directive", "quq/internal/directivefixture"}, fixtureCorpus{"cleanok", "quq/internal/cleanok"}},
}

// suppressionProven lists the analyzers whose failing corpus must also
// demonstrate a working opt-out: at least one finding silenced by the
// analyzer's directive.
var suppressionProven = []string{"lockcheck", "ctxflow", "leakcheck", "atomicmix", "metriclabel", "fsynccheck"}

// TestEveryAnalyzerHasFixtures is the registry meta-test: each analyzer
// must prove at least one true positive and at least one silent
// conforming corpus, and the concurrency/determinism analyzers must
// additionally prove their suppression directive works.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	loader, err := fixtureLoader()
	if err != nil {
		t.Fatal(err)
	}
	load := func(c fixtureCorpus) *Package {
		t.Helper()
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", c.dir), c.path)
		if err != nil {
			t.Fatalf("loading %s as %s: %v", c.dir, c.path, err)
		}
		return pkg
	}
	suppressedBy := map[string]int{}
	for _, a := range Analyzers() {
		fx, ok := analyzerFixtures[a.Name]
		if !ok {
			t.Errorf("analyzer %q registered without a fixture entry; add failing and passing corpora", a.Name)
			continue
		}
		diags, suppressed := RunWithStats(load(fx.failing), []*Analyzer{a})
		if len(diags) == 0 {
			t.Errorf("analyzer %q produced no findings on its failing corpus %s", a.Name, fx.failing.dir)
		}
		suppressedBy[a.Name] += suppressed[a.Name]
		if diags := RunAnalyzers(load(fx.passing), []*Analyzer{a}); len(diags) != 0 {
			t.Errorf("analyzer %q flagged its conforming corpus %s: %v", a.Name, fx.passing.dir, diags)
		}
	}
	for name, fx := range analyzerFixtures {
		found := false
		for _, a := range Analyzers() {
			if a.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fixture entry %q names an unregistered analyzer (stale table?); failing corpus %s", name, fx.failing.dir)
		}
	}
	for _, name := range suppressionProven {
		if suppressedBy[name] < 1 {
			t.Errorf("analyzer %q must demonstrate at least one directive-suppressed finding in its failing corpus", name)
		}
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	loader, err := fixtureLoader()
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Fatalf("ExpandPatterns descended into %s", d)
		}
	}
	if len(dirs) != 1 {
		t.Fatalf("expected exactly the package directory, got %v", dirs)
	}
}

func TestDirImportPath(t *testing.T) {
	loader, err := fixtureLoader()
	if err != nil {
		t.Fatal(err)
	}
	got, err := loader.DirImportPath(".")
	if err != nil {
		t.Fatal(err)
	}
	if got != "quq/internal/analysis" {
		t.Fatalf("DirImportPath(.) = %q", got)
	}
	if _, err := loader.DirImportPath("/"); err == nil {
		t.Fatal("DirImportPath outside the module must fail")
	}
}

// TestRepoIsVetClean is the self-hosting gate: the repository's own
// tier-1 source tree must produce zero findings. It mirrors what
// check.sh enforces via cmd/quq-vet, so a regression fails go test too.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.ExpandPatterns([]string{filepath.Join(loader.ModuleDir, "...")})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		path, err := loader.DirImportPath(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range Run(pkg) {
			t.Errorf("%s", d)
		}
	}
}
