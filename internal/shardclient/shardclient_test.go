package shardclient_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"quq/internal/serve"
	"quq/internal/shard"
	"quq/internal/shardclient"
)

// fakeWorker is a minimal quq-serve stand-in recording each classify
// as "key@replica". Flipping warming on makes it answer 503 with
// Retry-After — the warm-restart-in-progress signal a restarted
// quq-serve emits while loading its snapshot directory.
type fakeWorker struct {
	srv     *httptest.Server
	warming atomic.Bool

	mu          sync.Mutex
	classifies  []string
	warmingHits int
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	w := &fakeWorker{}
	mux := http.NewServeMux()
	handle := func(rw http.ResponseWriter, r *http.Request, quantize bool) {
		if w.warming.Load() {
			w.mu.Lock()
			w.warmingHits++
			w.mu.Unlock()
			rw.Header().Set("Retry-After", "1")
			rw.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		var sel struct {
			Model  string `json:"model"`
			Method string `json:"method"`
			Bits   int    `json:"bits"`
			Regime string `json:"regime"`
		}
		//quq:errdrop-ok test fake; malformed bodies surface as a zero key in assertions
		_ = json.NewDecoder(r.Body).Decode(&sel)
		key, _ := serve.KeyFromWire(sel.Model, sel.Method, sel.Bits, sel.Regime)
		replica := r.Header.Get(serve.ReplicaHeader)
		if replica == "" {
			replica = "-"
		}
		if !quantize {
			w.mu.Lock()
			w.classifies = append(w.classifies, key.String()+"@"+replica)
			w.mu.Unlock()
		}
		rw.Header().Set("Content-Type", "application/json")
		if quantize {
			fmt.Fprintf(rw, `{"key":%q,"cached":false,"build_ms":1}`, key)
			return
		}
		fmt.Fprintf(rw, `{"key":%q,"results":[{"argmax":7,"logits":[0.1,0.9]}]}`, key)
	}
	mux.HandleFunc("POST /v1/classify", func(rw http.ResponseWriter, r *http.Request) { handle(rw, r, false) })
	mux.HandleFunc("POST /v1/quantize", func(rw http.ResponseWriter, r *http.Request) { handle(rw, r, true) })
	mux.HandleFunc("GET /healthz", func(http.ResponseWriter, *http.Request) {})
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

func (w *fakeWorker) seen() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.classifies...)
}

func (w *fakeWorker) warmHits() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.warmingHits
}

// newFleet builds workers, a front over them (probing and retries off)
// serving real HTTP, and a client bootstrapped from its /cluster page.
func newFleet(t *testing.T, replicas, n int) ([]*fakeWorker, *shard.Front, *httptest.Server, *shardclient.Client) {
	t.Helper()
	workers := make([]*fakeWorker, n)
	addrs := make([]string, n)
	for i := range workers {
		workers[i] = newFakeWorker(t)
		addrs[i] = workers[i].srv.URL
	}
	f := shard.New(shard.Options{
		Backends:      addrs,
		Replicas:      replicas,
		ProbeInterval: -1,
		Retries:       -1,
		RetryBackoff:  1,
	})
	t.Cleanup(f.Close)
	front := httptest.NewServer(f.Handler())
	t.Cleanup(front.Close)
	c, err := shardclient.New(context.Background(), front.URL, shardclient.Options{})
	if err != nil {
		t.Fatalf("shardclient.New: %v", err)
	}
	return workers, f, front, c
}

func workerByAddr(workers []*fakeWorker) map[string]*fakeWorker {
	m := make(map[string]*fakeWorker, len(workers))
	for _, w := range workers {
		m[w.srv.URL] = w
	}
	return m
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("ViT-%d/QUQ/w6a6/partial", i)
	}
	return keys
}

// TestClientRingMatchesServer is the ownership property test: the
// client's locally built ring must agree with the server's, byte for
// byte, on the primary owner AND the full slot-ordered replica set of
// every key. This is what makes direct routing safe — a single
// disagreement sends a request to a worker that never calibrated the
// key.
func TestClientRingMatchesServer(t *testing.T) {
	_, f, _, c := newFleet(t, 2, 4)

	if got, want := c.Epoch(), f.Members().Epoch(); got != want {
		t.Fatalf("client epoch = %d, server epoch = %d", got, want)
	}
	if got := c.Replicas(); got != 2 {
		t.Fatalf("client replicas = %d, want 2", got)
	}
	for _, key := range testKeys(2000) {
		want, ok := f.Ring().Owner(key)
		if !ok {
			t.Fatal("server ring empty")
		}
		got, ok := c.Owner(key)
		if !ok || got != want.Addr() {
			t.Fatalf("key %q: client owner %q, server owner %q", key, got, want.Addr())
		}
		serverSet := f.Ring().OwnerN(key, 2)
		clientSet := c.OwnerSet(key)
		if len(clientSet) != len(serverSet) {
			t.Fatalf("key %q: client set %v vs server set of %d", key, clientSet, len(serverSet))
		}
		for slot := range serverSet {
			if clientSet[slot] != serverSet[slot].Addr() {
				t.Fatalf("key %q slot %d: client %q, server %q", key, slot, clientSet[slot], serverSet[slot].Addr())
			}
		}
	}
}

// TestClientClassifiesDirect: a classify lands on the key's primary
// owner without touching the proxy, stamped with replica slot 0.
func TestClientClassifiesDirect(t *testing.T) {
	workers, f, _, c := newFleet(t, 2, 3)
	byAddr := workerByAddr(workers)

	const model = "ViT-S"
	key, _ := serve.KeyFromWire(model, "QUQ", 6, "")
	owners := f.Ring().OwnerN(key.String(), 2)

	res, err := c.Classify(context.Background(), model, "QUQ", 6, "", nil)
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	if res.Via != owners[0].Addr() {
		t.Fatalf("served via %q, want primary owner %q", res.Via, owners[0].Addr())
	}
	if len(res.Results) != 1 || res.Results[0].ArgMax != 7 {
		t.Fatalf("results = %+v, want the fake's argmax 7", res.Results)
	}
	got := byAddr[owners[0].Addr()].seen()
	if len(got) != 1 || !strings.HasSuffix(got[0], "@0") {
		t.Fatalf("primary saw %v, want one request stamped @0", got)
	}
	for addr, w := range byAddr {
		if addr != owners[0].Addr() && len(w.seen()) != 0 {
			t.Fatalf("non-primary %s saw classifies %v", addr, w.seen())
		}
	}
}

// TestClientFailsOverAcrossReplicaSlots: when the primary owner dies,
// the client walks to the surviving replica — the worker that holds
// the calibration — keeping the slot stamp honest, and remembers the
// failure so the next request skips the corpse without re-dialing it.
func TestClientFailsOverAcrossReplicaSlots(t *testing.T) {
	workers, f, _, c := newFleet(t, 2, 3)
	byAddr := workerByAddr(workers)

	const model = "DeiT-B"
	key, _ := serve.KeyFromWire(model, "QUQ", 6, "")
	owners := f.Ring().OwnerN(key.String(), 2)
	byAddr[owners[0].Addr()].srv.Close() // kill the primary

	for i := 0; i < 2; i++ {
		res, err := c.Classify(context.Background(), model, "QUQ", 6, "", nil)
		if err != nil {
			t.Fatalf("classify %d: %v", i, err)
		}
		if res.Via != owners[1].Addr() {
			t.Fatalf("classify %d served via %q, want surviving replica %q", i, res.Via, owners[1].Addr())
		}
	}
	got := byAddr[owners[1].Addr()].seen()
	if len(got) != 2 || !strings.HasSuffix(got[0], "@1") || !strings.HasSuffix(got[1], "@1") {
		t.Fatalf("replica saw %v, want two requests stamped @1", got)
	}
}

// TestClientSkipsWarmingOwnerWithoutDemotion: a 503 from an owner that
// is warm-loading its snapshot directory routes the read to the replica
// sibling — retryable, never an error — and the warming owner is NOT
// marked unhealthy: every subsequent classify probes it first, so
// routing snaps back the moment the warm restart completes.
func TestClientSkipsWarmingOwnerWithoutDemotion(t *testing.T) {
	workers, f, _, c := newFleet(t, 2, 3)
	byAddr := workerByAddr(workers)

	const model = "ViT-L"
	key, _ := serve.KeyFromWire(model, "QUQ", 6, "")
	owners := f.Ring().OwnerN(key.String(), 2)
	primary := byAddr[owners[0].Addr()]
	primary.warming.Store(true)

	for i := 0; i < 2; i++ {
		res, err := c.Classify(context.Background(), model, "QUQ", 6, "", nil)
		if err != nil {
			t.Fatalf("classify %d during warm restart: %v", i, err)
		}
		if res.Via != owners[1].Addr() {
			t.Fatalf("classify %d served via %q, want replica sibling %q while the primary warms", i, res.Via, owners[1].Addr())
		}
	}
	if got := primary.warmHits(); got != 2 {
		t.Fatalf("warming owner saw %d probes, want 2: a 503 must not demote the owner", got)
	}

	primary.warming.Store(false)
	res, err := c.Classify(context.Background(), model, "QUQ", 6, "", nil)
	if err != nil {
		t.Fatalf("classify after warm restart: %v", err)
	}
	if res.Via != owners[0].Addr() {
		t.Fatalf("served via %q, want recovered primary %q", res.Via, owners[0].Addr())
	}
	if seen := primary.seen(); len(seen) != 1 || !strings.HasSuffix(seen[0], "@0") {
		t.Fatalf("recovered primary saw %v, want one request stamped @0", seen)
	}
}

// TestClientFallsBackToProxy: with the whole replica set unreachable
// the client does NOT guess a third worker itself — routing past the
// set is the proxy's call — it falls back to the front-end, which
// ejects the corpses and serves from a survivor.
func TestClientFallsBackToProxy(t *testing.T) {
	workers, f, _, c := newFleet(t, 2, 3)
	byAddr := workerByAddr(workers)

	const model = "Swin-T"
	key, _ := serve.KeyFromWire(model, "QUQ", 6, "")
	owners := f.Ring().OwnerN(key.String(), 2)
	byAddr[owners[0].Addr()].srv.Close()
	byAddr[owners[1].Addr()].srv.Close()

	res, err := c.Classify(context.Background(), model, "QUQ", 6, "", nil)
	if err != nil {
		t.Fatalf("classify with dead replica set: %v", err)
	}
	if res.Via != shardclient.ProxyVia {
		t.Fatalf("served via %q, want %q", res.Via, shardclient.ProxyVia)
	}
	// The front walked past the dead replica set to the survivor, which
	// serves outside any replica slot (no stamp).
	var survivor *fakeWorker
	for addr, w := range byAddr {
		if addr != owners[0].Addr() && addr != owners[1].Addr() {
			survivor = w
		}
	}
	got := survivor.seen()
	if len(got) != 1 || !strings.HasSuffix(got[0], "@-") {
		t.Fatalf("survivor saw %v, want one unstamped request", got)
	}
}

// TestClientRefreshesOnEpochChange: a membership change on the front
// (admin join) bumps the epoch; the client notices the stale stamp on
// its next proxied response, refreshes, and from then on agrees with
// the server ring about the newcomer's keys.
func TestClientRefreshesOnEpochChange(t *testing.T) {
	_, f, front, c := newFleet(t, 1, 2)
	before := c.Epoch()

	late := newFakeWorker(t)
	body := strings.NewReader(fmt.Sprintf(`{"addr":%q}`, late.srv.URL))
	resp, err := http.Post(front.URL+"/admin/join", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if want := f.Members().Epoch(); want != before+1 {
		t.Fatalf("join moved epoch to %d, want %d", want, before+1)
	}

	// A proxied request carries the new epoch; the client must refresh.
	if _, err := c.Quantize(context.Background(), "ViT-S", "QUQ", 6, ""); err != nil {
		t.Fatalf("quantize: %v", err)
	}
	if got := c.Epoch(); got != before+1 {
		t.Fatalf("client epoch after proxied response = %d, want %d", got, before+1)
	}
	for _, key := range testKeys(500) {
		want, _ := f.Ring().Owner(key)
		if got, _ := c.Owner(key); got != want.Addr() {
			t.Fatalf("post-refresh disagreement on %q: client %q, server %q", key, got, want.Addr())
		}
	}
}

// TestClientRejectsGarbageSelectors: enum spelling is checked client-
// side, before hashing or any network traffic, with the same rules the
// registry applies.
func TestClientRejectsGarbageSelectors(t *testing.T) {
	_, _, _, c := newFleet(t, 1, 1)
	if _, err := c.Classify(context.Background(), "ViT-S", "NoSuchMethod", 6, "", nil); err == nil {
		t.Fatal("classify with unknown method must fail client-side")
	}
	if _, err := c.Quantize(context.Background(), "ViT-S", "QUQ", 2, ""); err == nil {
		t.Fatal("quantize with unsupported bits must fail client-side")
	}
}

// TestNewFailsOnUnreachableFront: construction performs the bootstrap
// fetch and surfaces its failure instead of returning a client with an
// empty ring.
func TestNewFailsOnUnreachableFront(t *testing.T) {
	if _, err := shardclient.New(context.Background(), "http://127.0.0.1:1", shardclient.Options{}); err == nil {
		t.Fatal("New against a dead front must fail")
	}
}
