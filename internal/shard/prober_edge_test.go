package shard_test

import (
	"context"
	"testing"

	"quq/internal/shard"
)

// TestProberReadmitsImmediatelyAtOkAfterOne pins the hysteresis edge:
// with OkAfter=1, a single healthy probe readmits an ejected backend —
// there is no hidden extra round — and the recovery streak still resets
// on every failure, so a flapping backend needs its one healthy probe
// AFTER the last failure, not amortized across them.
func TestProberReadmitsImmediatelyAtOkAfterOne(t *testing.T) {
	b0, b1 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1")
	f := shard.New(shard.Options{
		Backends:      []string{b0.srv.URL, b1.srv.URL},
		ProbeInterval: -1,
		Retries:       -1,
		RetryBackoff:  1,
		OkAfter:       1,
	})
	t.Cleanup(f.Close)
	ctx := context.Background()

	b0.healthy.Store(false)
	f.ProbeNow(ctx) // FailAfter=2: one strike
	f.ProbeNow(ctx) // ejected
	if got := f.Ring().HealthyCount(); got != 1 {
		t.Fatalf("after 2 failed probes: healthy = %d, want 1", got)
	}

	b0.healthy.Store(true)
	f.ProbeNow(ctx) // OkAfter=1: readmitted on the first healthy probe
	if got := f.Ring().HealthyCount(); got != 2 {
		t.Fatalf("one healthy probe at OkAfter=1 did not readmit: healthy = %d", got)
	}
	if got := f.Metrics().Readmissions.Value(); got != 1 {
		t.Fatalf("readmissions = %d, want 1", got)
	}

	// Eject again, then interleave a failure before the healthy probe:
	// the readmission must key off the probe AFTER the failure.
	b0.healthy.Store(false)
	f.ProbeNow(ctx)
	f.ProbeNow(ctx)
	if got := f.Ring().HealthyCount(); got != 1 {
		t.Fatalf("second ejection: healthy = %d, want 1", got)
	}
	f.ProbeNow(ctx) // still down: streak stays broken
	b0.healthy.Store(true)
	f.ProbeNow(ctx)
	if got := f.Ring().HealthyCount(); got != 2 {
		t.Fatalf("healthy probe after failure streak did not readmit: healthy = %d", got)
	}
	if got := f.Metrics().Readmissions.Value(); got != 2 {
		t.Fatalf("readmissions = %d, want 2", got)
	}
}
