package experiments

import (
	"fmt"
	"math"
	"strings"

	"quq/internal/dist"
	"quq/internal/quant"
	"quq/internal/rng"
)

// AblationRow reports the per-family quantization MSE of one PRA
// configuration, for the design-choice ablations DESIGN.md calls out:
// mode switching, grid-search refinement, and the λ_A / q hyperparameters
// of Algorithm 2.
type AblationRow struct {
	Name string
	Bits int
	MSE  [4]float64
	// Modes records which QUQ mode each family's quantizer selected.
	Modes [4]quant.Mode
}

// Ablations runs the PRA design-choice sweeps at the given bit-width.
func Ablations(n, bits int, seed uint64) []AblationRow {
	if n <= 0 {
		n = 1 << 16
	}
	if bits == 0 {
		bits = 6
	}

	type variant struct {
		name   string
		opts   quant.PRAOptions
		refine bool
	}
	base := quant.DefaultPRAOptions()
	variants := []variant{
		{"default (λ_A=4, q=0.99)", base, false},
		{"default + grid search", base, true},
	}
	noSwitch := base
	noSwitch.DisableModeSwitch = true
	variants = append(variants, variant{"mode switching disabled", noSwitch, false})
	for _, lam := range []float64{2, 8, 16} {
		o := base
		o.LambdaA = lam
		variants = append(variants, variant{fmt.Sprintf("λ_A=%g", lam), o, false})
	}
	for _, q := range []float64{0.90, 0.95, 0.999} {
		o := base
		o.QInit = q
		if o.QAccept > q {
			o.QAccept = q - 0.02
		}
		variants = append(variants, variant{fmt.Sprintf("q=%g", q), o, false})
	}

	var rows []AblationRow
	for _, v := range variants {
		row := AblationRow{Name: v.name, Bits: bits}
		for fi, fam := range dist.Families {
			xs := dist.Sample(fam, n, rng.New(seed))
			p := quant.PRA(xs, bits, v.opts)
			if v.refine {
				p = quant.Refine(xs, p, quant.DefaultRefineOptions())
			}
			row.MSE[fi] = p.MSE(xs)
			row.Modes[fi] = p.Mode
		}
		rows = append(rows, row)
	}

	// Uniform reference row.
	ref := AblationRow{Name: "uniform (BaseQ)", Bits: bits}
	for fi, fam := range dist.Families {
		xs := dist.Sample(fam, n, rng.New(seed))
		absmax := 0.0
		for _, v := range xs {
			if a := math.Abs(v); a > absmax {
				absmax = a
			}
		}
		ref.MSE[fi] = quant.UniformMSE(xs, quant.UniformDelta(absmax, bits), bits)
		ref.Modes[fi] = quant.ModeD
	}
	rows = append(rows, ref)
	return rows
}

// FormatAblations renders the sweep.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s", "Variant")
	for _, fam := range dist.Families {
		fmt.Fprintf(&b, " %-17s", fam)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s", r.Name)
		for i := range r.MSE {
			fmt.Fprintf(&b, " %-10.2e mode=%v", r.MSE[i], r.Modes[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
