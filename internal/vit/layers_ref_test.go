package vit

import (
	"math"
	"testing"

	"quq/internal/mathx"
	"quq/internal/rng"
	"quq/internal/tensor"
)

// refBlockForward is a line-for-line replica of Block.Forward as it
// existed before the kernel layer: scalar i-k-j GEMM + separate bias
// pass for the linears, strided per-head dot products for the scores,
// and the zero-skipping accumulation loop for the context. It is the
// oracle that pins the refactored attention path (packed heads, tiled
// kernels, fused bias, arena scratch) to the exact bits the old code
// produced.
func refBlockForward(b *Block, x *tensor.Tensor, nSeq int) *tensor.Tensor {
	dim := x.Dim(1)
	s := x.Dim(0)
	t := s / nSeq
	heads := b.Heads
	dh := dim / heads
	scale := 1 / math.Sqrt(float64(dh))

	refLinear := func(l *Linear, in *tensor.Tensor) *tensor.Tensor {
		m, k, n := in.Dim(0), in.Dim(1), l.Out()
		out := tensor.New(m, n)
		for i := 0; i < m; i++ {
			arow := in.Row(i)
			orow := out.Row(i)
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := l.W.Row(kk)
				for j := range brow {
					orow[j] += av * brow[j]
				}
			}
		}
		return out.AddRowVector(l.B)
	}

	h := b.LN1.Apply(x)
	qkvOut := refLinear(b.QKV, h)

	q, k, v := tensor.New(s, dim), tensor.New(s, dim), tensor.New(s, dim)
	for r := 0; r < s; r++ {
		row := qkvOut.Row(r)
		copy(q.Row(r), row[:dim])
		copy(k.Row(r), row[dim:2*dim])
		copy(v.Row(r), row[2*dim:])
	}

	scores := tensor.New(nSeq*heads*t, t)
	for sq := 0; sq < nSeq; sq++ {
		for hd := 0; hd < heads; hd++ {
			for i := 0; i < t; i++ {
				qrow := q.Row(sq*t + i)[hd*dh : (hd+1)*dh]
				srow := scores.Row((sq*heads+hd)*t + i)
				for j := 0; j < t; j++ {
					krow := k.Row(sq*t + j)[hd*dh : (hd+1)*dh]
					var dot float64
					for e := range qrow {
						dot += qrow[e] * krow[e]
					}
					srow[j] = dot * scale
				}
			}
		}
	}
	for r := 0; r < scores.Dim(0); r++ {
		mathx.SoftmaxInPlace(scores.Row(r))
	}

	ctx := tensor.New(s, dim)
	for sq := 0; sq < nSeq; sq++ {
		for hd := 0; hd < heads; hd++ {
			for i := 0; i < t; i++ {
				prow := scores.Row((sq*heads+hd)*t + i)
				crow := ctx.Row(sq*t + i)[hd*dh : (hd+1)*dh]
				for j := 0; j < t; j++ {
					p := prow[j]
					if p == 0 {
						continue
					}
					vrow := v.Row(sq*t + j)[hd*dh : (hd+1)*dh]
					for e := range crow {
						crow[e] += p * vrow[e]
					}
				}
			}
		}
	}
	o := refLinear(b.Proj, ctx)

	x = x.Add(o)
	h = b.LN2.Apply(x)
	h = refLinear(b.FC1, h)
	h.Apply(mathx.Gelu)
	h = refLinear(b.FC2, h)
	return x.Add(h)
}

// TestBlockForwardMatchesNaiveReference pins the kernel-layer block
// (packed per-head GEMMs, bias-fused epilogue, arena scratch) to the
// pre-kernel-layer scalar loops, bit for bit, across single- and
// multi-sequence layouts and with the intra-op budget raised.
func TestBlockForwardMatchesNaiveReference(t *testing.T) {
	cases := []struct {
		name          string
		dim, heads    int
		nSeq, tokens  int
		mlpRatio, sd1 int
	}{
		{"vit-nano-shape", 48, 3, 1, 17, 4, 1},
		{"multi-window", 32, 4, 3, 8, 2, 2},
		{"single-token", 24, 2, 1, 1, 4, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := rng.New(uint64(100 + tc.sd1))
			b := NewBlock(tc.dim, tc.heads, tc.mlpRatio)
			for _, l := range []*Linear{b.QKV, b.Proj, b.FC1, b.FC2} {
				l.W.Apply(func(float64) float64 { return src.Gauss(0, 0.3) })
				for i := range l.B {
					l.B[i] = src.Gauss(0, 0.1)
				}
			}
			x := tensor.New(tc.nSeq*tc.tokens, tc.dim)
			for i := range x.Data() {
				// Plant zeros to exercise the reference zero-skip paths.
				if src.Float64() < 0.1 {
					continue
				}
				x.Data()[i] = src.Laplace(0.7)
			}

			want := refBlockForward(b, x.Clone(), tc.nSeq)
			got := b.Forward(x.Clone(), tc.nSeq, 0, ForwardOpts{})

			tensor.SetIntraOpWorkers(4)
			t.Cleanup(func() { tensor.SetIntraOpWorkers(1) })
			gotPar := b.Forward(x.Clone(), tc.nSeq, 0, ForwardOpts{})

			for i, w := range want.Data() {
				if math.Float64bits(got.Data()[i]) != math.Float64bits(w) {
					t.Fatalf("element %d: kernel block %v, reference %v", i, got.Data()[i], w)
				}
				if math.Float64bits(gotPar.Data()[i]) != math.Float64bits(w) {
					t.Fatalf("element %d: parallel kernel block %v, reference %v", i, gotPar.Data()[i], w)
				}
			}
		})
	}
}
