// Package snapstore persists calibrated models as content-addressed
// snapshot files so a crashed worker can warm-restart without redoing
// calibration. A snapshot is a versioned header, the SHA-256 digest of
// the payload, and the payload itself: the registry key, the quantized
// model's weights (the vit checkpoint format), every activation
// quantizer, and the integer-path weight parameters. The encoding is
// canonical — map entries are written in sorted key order and all
// numbers are fixed-width little-endian — so byte-identical calibration
// builds (the replication layer's core guarantee) produce byte-identical
// snapshots, and the digest doubles as a cross-replica equality check
// for anti-entropy repair.
//
// Files are written atomically (write temp, fsync, rename) and verified
// digest-first on read: a snapshot whose digest does not match is
// quarantined, never parsed and never served.
package snapstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"quq/internal/baselines"
	"quq/internal/ptq"
	"quq/internal/quant"
	"quq/internal/vit"
)

// Format constants. Version bumps when the payload layout changes; old
// versions are rejected (quarantined), not migrated — the worker simply
// recalibrates, which is the state it would have been in without a
// snapshot.
const (
	magic   = "QUQSNAP1"
	version = 1

	// headerBytes is magic + version u32 + digest[32] + payload-length u64.
	headerBytes = 8 + 4 + 32 + 8

	// maxStringLen bounds every length-prefixed string in the payload
	// (keys, method names, quantizer tags).
	maxStringLen = 4096
	// maxBlobLen bounds the model checkpoint and each quantizer record.
	maxBlobLen = 1 << 28
	// maxEntries bounds the activation and weight-parameter counts.
	maxEntries = 1 << 20
)

// Entry is one decoded snapshot.
type Entry struct {
	// Key is the registry wire key ("Config/Method/wNaN/regime") the
	// snapshot was built for.
	Key string
	// Config is the model-zoo configuration name the weights belong to.
	Config string
	// Model is the reconstructed quantized model (float activations
	// path; the caller re-arms the integer path if it wants one).
	Model *ptq.QuantizedModel
	// Digest is the hex SHA-256 of the payload — the snapshot's content
	// address.
	Digest string
}

// Encode serializes qm under the given registry key and returns the
// complete snapshot file image plus its hex digest. Encoding fails if
// any activation quantizer is not snapshot-capable; the caller keeps
// serving from memory in that case.
func Encode(key string, qm *ptq.QuantizedModel) (fileBytes []byte, digestHex string, err error) {
	if qm == nil {
		return nil, "", fmt.Errorf("snapstore: encode nil model")
	}
	payload, err := encodePayload(key, qm)
	if err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, headerBytes+len(payload))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = append(out, sum[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return out, hex.EncodeToString(sum[:]), nil
}

func encodePayload(key string, qm *ptq.QuantizedModel) ([]byte, error) {
	var buf bytes.Buffer
	appendString := func(s string) error {
		if len(s) > maxStringLen {
			return fmt.Errorf("snapstore: string field %d bytes exceeds %d", len(s), maxStringLen)
		}
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
		buf.Write(lenBuf[:])
		buf.WriteString(s)
		return nil
	}
	appendBlob := func(b []byte) {
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(b)))
		buf.Write(lenBuf[:])
		buf.Write(b)
	}
	appendU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}

	if err := appendString(key); err != nil {
		return nil, err
	}
	if err := appendString(qm.Model.Config().Name); err != nil {
		return nil, err
	}
	if err := appendString(qm.Method); err != nil {
		return nil, err
	}
	appendU32(uint32(qm.Bits))
	appendU32(uint32(qm.Regime))

	var model bytes.Buffer
	if err := vit.Save(qm.Model, &model); err != nil {
		return nil, fmt.Errorf("snapstore: serializing model: %w", err)
	}
	appendBlob(model.Bytes())

	actKeys := make([]string, 0, len(qm.Acts))
	for k := range qm.Acts {
		actKeys = append(actKeys, k)
	}
	sort.Strings(actKeys)
	appendU32(uint32(len(actKeys)))
	for _, k := range actKeys {
		tag, data, err := ptq.MarshalQuantizer(qm.Acts[k])
		if err != nil {
			return nil, fmt.Errorf("snapstore: site %s: %w", k, err)
		}
		if err := appendString(k); err != nil {
			return nil, err
		}
		if err := appendString(tag); err != nil {
			return nil, err
		}
		appendBlob(data)
	}

	if qm.WeightParams == nil {
		buf.WriteByte(0)
	} else {
		buf.WriteByte(1)
		wpKeys := make([]string, 0, len(qm.WeightParams))
		for k := range qm.WeightParams {
			wpKeys = append(wpKeys, k)
		}
		sort.Strings(wpKeys)
		appendU32(uint32(len(wpKeys)))
		for _, k := range wpKeys {
			data, err := qm.WeightParams[k].MarshalBinary()
			if err != nil {
				return nil, fmt.Errorf("snapstore: weight site %s: %w", k, err)
			}
			if err := appendString(k); err != nil {
				return nil, err
			}
			appendBlob(data)
		}
	}
	return buf.Bytes(), nil
}

// Decode parses and verifies one snapshot file image. The payload
// digest is checked before any parsing, so a corrupt or truncated file
// is rejected by the hash comparison alone — mutated bytes never reach
// the model decoder.
func Decode(data []byte) (*Entry, error) {
	if len(data) < headerBytes {
		return nil, fmt.Errorf("snapstore: file is %d bytes, shorter than the %d-byte header", len(data), headerBytes)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("snapstore: bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != version {
		return nil, fmt.Errorf("snapstore: unsupported version %d, want %d", v, version)
	}
	var want [32]byte
	copy(want[:], data[12:44])
	plen := binary.LittleEndian.Uint64(data[44:52])
	if plen != uint64(len(data)-headerBytes) {
		return nil, fmt.Errorf("snapstore: payload length %d does not match %d file bytes after header", plen, len(data)-headerBytes)
	}
	payload := data[headerBytes:]
	if sum := sha256.Sum256(payload); sum != want {
		return nil, fmt.Errorf("snapstore: digest mismatch: file says %s, payload hashes to %s",
			hex.EncodeToString(want[:]), hex.EncodeToString(sum[:]))
	}
	e, err := decodePayload(payload)
	if err != nil {
		return nil, err
	}
	e.Digest = hex.EncodeToString(want[:])
	return e, nil
}

// reader is a bounds-checked cursor over the payload.
type reader struct {
	data []byte
	off  int
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || n > len(r.data)-r.off {
		return nil, fmt.Errorf("snapstore: truncated payload at offset %d (need %d of %d remaining bytes)", r.off, n, len(r.data)-r.off)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("snapstore: string length %d exceeds %d", n, maxStringLen)
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) blob() ([]byte, error) {
	n, err := r.u64()
	if err != nil {
		return nil, err
	}
	if n > maxBlobLen {
		return nil, fmt.Errorf("snapstore: blob length %d exceeds %d", n, maxBlobLen)
	}
	return r.take(int(n))
}

func decodePayload(payload []byte) (*Entry, error) {
	r := &reader{data: payload}
	key, err := r.str()
	if err != nil {
		return nil, err
	}
	configName, err := r.str()
	if err != nil {
		return nil, err
	}
	method, err := r.str()
	if err != nil {
		return nil, err
	}
	bits, err := r.u32()
	if err != nil {
		return nil, err
	}
	regime, err := r.u32()
	if err != nil {
		return nil, err
	}
	cfg, ok := configByName(configName)
	if !ok {
		return nil, fmt.Errorf("snapstore: unknown model config %q", configName)
	}
	modelBlob, err := r.blob()
	if err != nil {
		return nil, err
	}
	model, err := vit.Load(cfg, bytes.NewReader(modelBlob))
	if err != nil {
		return nil, fmt.Errorf("snapstore: loading model weights: %w", err)
	}
	nActs, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nActs > maxEntries {
		return nil, fmt.Errorf("snapstore: %d activation records exceed %d", nActs, maxEntries)
	}
	acts := make(map[string]ptq.TensorQuantizer, nActs)
	for i := uint32(0); i < nActs; i++ {
		site, err := r.str()
		if err != nil {
			return nil, err
		}
		tag, err := r.str()
		if err != nil {
			return nil, err
		}
		data, err := r.blob()
		if err != nil {
			return nil, err
		}
		q, err := unmarshalQuantizer(tag, data)
		if err != nil {
			return nil, fmt.Errorf("snapstore: site %s: %w", site, err)
		}
		if _, dup := acts[site]; dup {
			return nil, fmt.Errorf("snapstore: duplicate activation site %s", site)
		}
		acts[site] = q
	}
	qm := &ptq.QuantizedModel{
		Model:  model,
		Bits:   int(bits),
		Regime: ptq.Regime(regime),
		Method: method,
		Acts:   acts,
	}
	hasWP, err := r.take(1)
	if err != nil {
		return nil, err
	}
	switch hasWP[0] {
	case 0:
	case 1:
		nWP, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nWP > maxEntries {
			return nil, fmt.Errorf("snapstore: %d weight-param records exceed %d", nWP, maxEntries)
		}
		qm.WeightParams = make(map[string]*quant.Params, nWP)
		for i := uint32(0); i < nWP; i++ {
			site, err := r.str()
			if err != nil {
				return nil, err
			}
			data, err := r.blob()
			if err != nil {
				return nil, err
			}
			p, err := quant.UnmarshalParams(data)
			if err != nil {
				return nil, fmt.Errorf("snapstore: weight site %s: %w", site, err)
			}
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("snapstore: weight site %s: %w", site, err)
			}
			if _, dup := qm.WeightParams[site]; dup {
				return nil, fmt.Errorf("snapstore: duplicate weight site %s", site)
			}
			qm.WeightParams[site] = p
		}
	default:
		return nil, fmt.Errorf("snapstore: weight-params flag is %d, want 0 or 1", hasWP[0])
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("snapstore: %d trailing payload bytes", len(r.data)-r.off)
	}
	return &Entry{Key: key, Config: configName, Model: qm}, nil
}

// unmarshalQuantizer dispatches a tagged quantizer record to the package
// that owns the tag.
func unmarshalQuantizer(tag string, data []byte) (ptq.TensorQuantizer, error) {
	if q, ok, err := ptq.UnmarshalQuantizer(tag, data); ok {
		return q, err
	}
	if q, ok, err := baselines.UnmarshalQuantizer(tag, data); ok {
		return q, err
	}
	return nil, fmt.Errorf("snapstore: unknown quantizer tag %q", tag)
}

// configByName resolves a zoo configuration (the six paper models plus
// ViT-Nano) by exact name.
func configByName(name string) (vit.Config, bool) {
	for _, cfg := range vit.ZooConfigs {
		if cfg.Name == name {
			return cfg, true
		}
	}
	if vit.ViTNano.Name == name {
		return vit.ViTNano, true
	}
	return vit.Config{}, false
}
