package shard_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"quq/internal/chaos"
	"quq/internal/serve/metrics"
	"quq/internal/shard"
	"quq/internal/testutil"
)

// fakeBackend is a minimal stand-in for quq-serve: it records how many
// classify requests it saw, answers /healthz according to a switch, and
// serves a small metrics page.
type fakeBackend struct {
	srv           *httptest.Server
	requests      atomic.Int64
	healthy       atomic.Bool
	status        atomic.Int64 // classify status code; 0 means 200
	metricsBroken atomic.Bool  // /metrics answers 500 while set
}

func newFakeBackend(t *testing.T, name string) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{}
	fb.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		fb.requests.Add(1)
		code := int(fb.status.Load())
		if code == 0 {
			code = http.StatusOK
		}
		w.Header().Set("Content-Type", "application/json")
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"backend":%q}`, name)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !fb.healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if fb.metricsBroken.Load() {
			http.Error(w, "metrics endpoint wedged", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# HELP quq_serve_requests_total fake\nquq_serve_requests_total %d\n", fb.requests.Load())
	})
	fb.srv = httptest.NewServer(mux)
	t.Cleanup(fb.srv.Close)
	return fb
}

// newFront builds a front-end over the given backends with background
// probing disabled and no transport retries, so every health transition
// in a test is explicit.
func newFront(t *testing.T, backends ...*fakeBackend) (*shard.Front, []string) {
	t.Helper()
	addrs := make([]string, len(backends))
	for i, b := range backends {
		addrs[i] = b.srv.URL
	}
	f := shard.New(shard.Options{
		Backends:      addrs,
		ProbeInterval: -1,
		Retries:       -1,
		RetryBackoff:  1,
	})
	t.Cleanup(f.Close)
	return f, addrs
}

func classify(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/classify", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestFrontRoutesDeterministically: the backend that serves a key is the
// ring owner, and repeated requests for the same key never move while
// the fleet is stable.
func TestFrontRoutesDeterministically(t *testing.T) {
	b0, b1, b2 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1"), newFakeBackend(t, "b2")
	f, _ := newFront(t, b0, b1, b2)

	seen := map[string]string{}
	for _, model := range []string{"ViT-Nano", "ViT-S", "Swin-T", "DeiT-B"} {
		body := fmt.Sprintf(`{"model":%q,"method":"QUQ","bits":6}`, model)
		var first string
		for i := 0; i < 3; i++ {
			w := classify(t, f.Handler(), body)
			if w.Code != http.StatusOK {
				t.Fatalf("classify %s: status %d: %s", model, w.Code, w.Body)
			}
			got := w.Header().Get(shard.BackendHeader)
			if got == "" {
				t.Fatal("response missing backend header")
			}
			if first == "" {
				first = got
			} else if got != first {
				t.Fatalf("key %s moved %s -> %s on a stable fleet", model, first, got)
			}
		}
		seen[model] = first
		key := fmt.Sprintf("%s/QUQ/w6a6/partial", model)
		owner, _ := f.Ring().Owner(key)
		if owner.Addr() != first {
			t.Fatalf("key %s served by %s but ring owner is %s", key, first, owner.Addr())
		}
	}
}

// TestFrontCanonicalizesBeforeHashing: "quq"/"Quq"/"QUQ" (and model-case
// variants) are one key, hence one backend — the canonicalization
// contract that keeps routing and backend caching in agreement.
func TestFrontCanonicalizesBeforeHashing(t *testing.T) {
	b0, b1, b2 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1"), newFakeBackend(t, "b2")
	f, _ := newFront(t, b0, b1, b2)

	variants := []string{
		`{"model":"ViT-S","method":"QUQ","bits":6}`,
		`{"model":"vit-s","method":"quq","bits":6}`,
		`{"model":"VIT-S","method":"Quq","bits":6,"regime":"Partial"}`,
	}
	var want string
	for i, body := range variants {
		w := classify(t, f.Handler(), body)
		if w.Code != http.StatusOK {
			t.Fatalf("variant %d: status %d: %s", i, w.Code, w.Body)
		}
		got := w.Header().Get(shard.BackendHeader)
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("spelling variant %d routed to %s, canonical went to %s", i, got, want)
		}
	}
}

// TestFrontRejectsUnknownEnums: bogus model/method/bits/regime are 400s
// at the front-end — no backend ever sees them.
func TestFrontRejectsUnknownEnums(t *testing.T) {
	b0, b1 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1")
	f, _ := newFront(t, b0, b1)

	bad := []string{
		`{"model":"ResNet-50","method":"QUQ"}`,
		`{"model":"ViT-S","method":"GPTQ"}`,
		`{"model":"ViT-S","method":"QUQ","bits":2}`,
		`{"model":"ViT-S","method":"QUQ","bits":17}`,
		`{"model":"ViT-S","method":"QUQ","regime":"turbo"}`,
		`not json`,
	}
	for _, body := range bad {
		w := classify(t, f.Handler(), body)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, w.Code)
		}
	}
	if n := b0.requests.Load() + b1.requests.Load(); n != 0 {
		t.Fatalf("backends saw %d requests for invalid selections", n)
	}
}

// TestFrontPropagatesBackpressure: a backend 429 is relayed with its
// Retry-After, counted, and — critically — never retried or failed over:
// exactly one backend attempt.
func TestFrontPropagatesBackpressure(t *testing.T) {
	b0, b1 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1")
	b0.status.Store(http.StatusTooManyRequests)
	b1.status.Store(http.StatusTooManyRequests)
	f, _ := newFront(t, b0, b1)

	w := classify(t, f.Handler(), `{"model":"ViT-S","method":"QUQ","bits":6}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 relayed without Retry-After")
	}
	if n := b0.requests.Load() + b1.requests.Load(); n != 1 {
		t.Fatalf("backpressured request hit backends %d times, want exactly 1", n)
	}
	if got := f.Metrics().Backpressure.Value(); got != 1 {
		t.Fatalf("backpressure counter = %d, want 1", got)
	}
}

// TestFrontFailsOverOnConnectionFailure: killing the owning backend
// ejects it passively and the survivor serves its keys; a later probe
// round readmits a recovered backend.
func TestFrontFailsOverOnConnectionFailure(t *testing.T) {
	b0, b1, b2 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1"), newFakeBackend(t, "b2")
	f, _ := newFront(t, b0, b1, b2)

	body := `{"model":"ViT-S","method":"QUQ","bits":6}`
	w := classify(t, f.Handler(), body)
	ownerAddr := w.Header().Get(shard.BackendHeader)
	var owner *fakeBackend
	for _, fb := range []*fakeBackend{b0, b1, b2} {
		if fb.srv.URL == ownerAddr {
			owner = fb
		}
	}
	owner.srv.Close() // kill the owning backend

	w = classify(t, f.Handler(), body)
	if w.Code != http.StatusOK {
		t.Fatalf("failover request: status %d: %s", w.Code, w.Body)
	}
	survivor := w.Header().Get(shard.BackendHeader)
	if survivor == ownerAddr {
		t.Fatal("request routed to the killed backend")
	}
	if got := f.Metrics().Ejections.Value(); got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}
	if got := f.Metrics().Failovers.Value(); got == 0 {
		t.Fatal("failover not counted")
	}
	if got := f.Ring().HealthyCount(); got != 2 {
		t.Fatalf("healthy count = %d, want 2", got)
	}

	// The survivor keeps serving the key on subsequent requests.
	w = classify(t, f.Handler(), body)
	if got := w.Header().Get(shard.BackendHeader); got != survivor {
		t.Fatalf("key moved again: %s -> %s", survivor, got)
	}
}

// TestProberEjectsAndReadmits: FailAfter consecutive probe failures
// eject a backend; OkAfter consecutive healthy probes readmit it and it
// resumes owning exactly its old arcs.
func TestProberEjectsAndReadmits(t *testing.T) {
	b0, b1 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1")
	f, addrs := newFront(t, b0, b1)

	b0.healthy.Store(false)
	f.ProbeNow(context.Background()) // one failure: below FailAfter=2, still admitted
	if got := f.Ring().HealthyCount(); got != 2 {
		t.Fatalf("after 1 failed probe: healthy = %d, want 2", got)
	}
	f.ProbeNow(context.Background()) // second consecutive failure: ejected
	if got := f.Ring().HealthyCount(); got != 1 {
		t.Fatalf("after 2 failed probes: healthy = %d, want 1", got)
	}
	if got := f.Metrics().Ejections.Value(); got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}

	b0.healthy.Store(true)
	f.ProbeNow(context.Background()) // one recovery probe: below OkAfter=2, still ejected
	if got := f.Ring().HealthyCount(); got != 1 {
		t.Fatalf("after 1 recovery probe: healthy = %d, want 1 (hysteresis)", got)
	}
	f.ProbeNow(context.Background()) // second consecutive ok: readmitted
	if got := f.Ring().HealthyCount(); got != 2 {
		t.Fatalf("after 2 recovery probes: healthy = %d, want 2", got)
	}
	if got := f.Metrics().Readmissions.Value(); got != 1 {
		t.Fatalf("readmissions = %d, want 1", got)
	}
	_ = addrs
}

// TestProberFlapHysteresis: a backend alternating dead and alive on
// every probe round must settle, not oscillate. Once ejected it never
// assembles OkAfter consecutive healthy probes, so it stays out (and
// the moved arc stays moved) until it is genuinely stable again.
func TestProberFlapHysteresis(t *testing.T) {
	b0, b1 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1")
	f, _ := newFront(t, b0, b1)

	b0.healthy.Store(false)
	f.ProbeNow(context.Background())
	f.ProbeNow(context.Background()) // FailAfter=2 consecutive failures: ejected
	if got := f.Ring().HealthyCount(); got != 1 {
		t.Fatalf("flapping backend not ejected: healthy = %d", got)
	}

	// Six rounds of perfect flapping: ok, fail, ok, fail, ok, fail.
	for i := 0; i < 3; i++ {
		b0.healthy.Store(true)
		f.ProbeNow(context.Background())
		if got := f.Ring().HealthyCount(); got != 1 {
			t.Fatalf("flap round %d: single ok probe readmitted the backend", i)
		}
		b0.healthy.Store(false)
		f.ProbeNow(context.Background())
	}
	if got := f.Metrics().Readmissions.Value(); got != 0 {
		t.Fatalf("readmissions during flapping = %d, want 0", got)
	}
	if got := f.Metrics().Ejections.Value(); got != 1 {
		t.Fatalf("ejections = %d, want 1 (the flapping backend never re-entered)", got)
	}

	// A genuinely stable recovery still gets back in.
	b0.healthy.Store(true)
	f.ProbeNow(context.Background())
	f.ProbeNow(context.Background())
	if got := f.Ring().HealthyCount(); got != 2 {
		t.Fatalf("stable recovery not readmitted: healthy = %d, want 2", got)
	}
	if got := f.Metrics().Readmissions.Value(); got != 1 {
		t.Fatalf("readmissions after stable recovery = %d, want 1", got)
	}
}

// TestFrontHealthz: ok with admitted backends, 503 once the fleet is
// gone.
func TestFrontHealthz(t *testing.T) {
	b0 := newFakeBackend(t, "b0")
	f, _ := newFront(t, b0)

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	f.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz with live backend: %d", w.Code)
	}

	b0.healthy.Store(false)
	f.ProbeNow(context.Background())
	f.ProbeNow(context.Background())
	w = httptest.NewRecorder()
	f.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead fleet: %d, want 503", w.Code)
	}
}

// TestFrontAggregatesMetrics: /metrics merges every backend's page with
// the front-end's own instruments into one deterministic exposition.
func TestFrontAggregatesMetrics(t *testing.T) {
	b0, b1, b2 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1"), newFakeBackend(t, "b2")
	f, _ := newFront(t, b0, b1, b2)

	// Generate some traffic so backend counters are non-zero.
	for _, model := range []string{"ViT-Nano", "ViT-S", "Swin-T", "DeiT-B"} {
		body := fmt.Sprintf(`{"model":%q,"method":"QUQ","bits":6}`, model)
		if w := classify(t, f.Handler(), body); w.Code != http.StatusOK {
			t.Fatalf("classify %s: %d", model, w.Code)
		}
	}
	total := b0.requests.Load() + b1.requests.Load() + b2.requests.Load()
	if total != 4 {
		t.Fatalf("backends saw %d requests, want 4", total)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	f.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", w.Code, w.Body)
	}
	page, err := metrics.ParseText(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatalf("aggregated page does not parse: %v", err)
	}
	if got, ok := page.Scalar("quq_serve_requests_total"); !ok || got != float64(total) {
		t.Fatalf("aggregated quq_serve_requests_total = %v (ok=%v), want %d", got, ok, total)
	}
	if got, ok := page.Scalar("quq_shard_requests_total"); !ok || got < 4 {
		t.Fatalf("aggregated quq_shard_requests_total = %v (ok=%v), want >= 4", got, ok)
	}
	if got, ok := page.Scalar("quq_shard_healthy_backends"); !ok || got != 3 {
		t.Fatalf("quq_shard_healthy_backends = %v (ok=%v), want 3", got, ok)
	}

	// Determinism: two scrapes with no traffic in between (metrics
	// requests themselves mutate shard counters, so strip those).
	w2 := httptest.NewRecorder()
	f.Handler().ServeHTTP(w2, req)
	p1, err1 := metrics.ParseText(bytes.NewReader(w.Body.Bytes()))
	p2, err2 := metrics.ParseText(bytes.NewReader(w2.Body.Bytes()))
	if err1 != nil || err2 != nil {
		t.Fatalf("reparse: %v / %v", err1, err2)
	}
	if v1, _ := p1.Scalar("quq_serve_requests_total"); true {
		if v2, _ := p2.Scalar("quq_serve_requests_total"); v1 != v2 {
			t.Fatalf("backend counters drifted between idle scrapes: %v vs %v", v1, v2)
		}
	}
	if len(p1.Names()) != len(p2.Names()) {
		t.Fatal("scrapes disagree on the metric name set")
	}
}

// TestFrontShards: topology endpoint reports every backend with health
// and the ring parameters.
func TestFrontShards(t *testing.T) {
	b0, b1 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1")
	f, addrs := newFront(t, b0, b1)

	req := httptest.NewRequest(http.MethodGet, "/shards", nil)
	w := httptest.NewRecorder()
	f.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/shards status %d", w.Code)
	}
	var resp struct {
		VNodes   int `json:"vnodes"`
		Backends []struct {
			Addr    string `json:"addr"`
			Healthy bool   `json:"healthy"`
		} `json:"backends"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.VNodes != 128 {
		t.Fatalf("vnodes = %d, want default 128", resp.VNodes)
	}
	if len(resp.Backends) != 2 {
		t.Fatalf("backends = %d, want 2", len(resp.Backends))
	}
	got := map[string]bool{}
	for _, b := range resp.Backends {
		got[b.Addr] = b.Healthy
	}
	for _, a := range addrs {
		if healthy, ok := got[a]; !ok || !healthy {
			t.Fatalf("backend %s missing or unhealthy in /shards: %v", a, got)
		}
	}
}

// TestAggregatorDegradesWithStaleShard: a healthy backend whose
// /metrics endpoint is wedged must not take the fleet view down — the
// merged page still renders, minus that backend's contribution, and
// quq_shard_stale_shards says exactly how much of the fleet is missing.
func TestAggregatorDegradesWithStaleShard(t *testing.T) {
	b0, b1 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1")
	f, _ := newFront(t, b0, b1)
	if w := classify(t, f.Handler(), `{"model":"ViT-Nano","method":"QUQ","bits":6}`); w.Code != http.StatusOK {
		t.Fatalf("classify: %d", w.Code)
	}

	// Ring ownership hashes the backends' ephemeral httptest ports, so
	// which backend served the classify varies per run. Wedge the idle
	// one: the served backend's counter must survive in the degraded
	// view, which only holds if its /metrics stays scrapeable.
	idle := b1
	if b1.requests.Load() > 0 {
		idle = b0
	}
	idle.metricsBroken.Store(true)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	f.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("fleet view failed outright with one wedged backend: %d", w.Code)
	}
	page, err := metrics.ParseText(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatalf("degraded page does not parse: %v", err)
	}
	if got, ok := page.Scalar("quq_shard_stale_shards"); !ok || got != 1 {
		t.Fatalf("quq_shard_stale_shards = %v (ok=%v), want 1", got, ok)
	}
	if got, ok := page.Scalar("quq_serve_requests_total"); !ok || got != 1 {
		t.Fatalf("working backend's counters missing from degraded view: %v (ok=%v)", got, ok)
	}
	if got := f.Metrics().ScrapeErrors.Value(); got != 1 {
		t.Fatalf("scrape errors = %d, want 1", got)
	}

	// Recovery clears the staleness signal on the next scrape.
	idle.metricsBroken.Store(false)
	w = httptest.NewRecorder()
	f.Handler().ServeHTTP(w, req)
	page, err = metrics.ParseText(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := page.Scalar("quq_shard_stale_shards"); !ok || got != 0 {
		t.Fatalf("quq_shard_stale_shards after recovery = %v (ok=%v), want 0", got, ok)
	}
}

// refuseTransport fails every round trip with a connection error,
// driving the front-end through its full retry schedule.
type refuseTransport struct{}

func (refuseTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	return nil, fmt.Errorf("dial %s: connection refused", r.URL.Host)
}

// retrySchedule runs one classify request against a fleet that refuses
// every connection and returns the backoff sleeps the front-end took,
// as recorded by the fake clock.
func retrySchedule(t *testing.T, seed uint64) []time.Duration {
	t.Helper()
	clock := chaos.NewFake()
	f := shard.New(shard.Options{
		Backends:      []string{"127.0.0.1:1", "127.0.0.1:2"},
		ProbeInterval: -1,
		Transport:     refuseTransport{},
		Seed:          seed,
		Clock:         clock,
	})
	t.Cleanup(f.Close)
	w := classify(t, f.Handler(), `{"model":"ViT-Nano","method":"QUQ","bits":6}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("fleet of refused connections answered %d, want 503", w.Code)
	}
	return clock.Sleeps()
}

// TestRetryBackoffSeededAndReproducible: the retry schedule is jittered
// (not the bare doubling base) yet fully determined by Options.Seed —
// two runs with one seed sleep the identical sequence, a different seed
// sleeps a different one. This is the property the chaos harness leans
// on to replay fault scripts byte-for-byte.
func TestRetryBackoffSeededAndReproducible(t *testing.T) {
	a := retrySchedule(t, 42)
	b := retrySchedule(t, 42)
	c := retrySchedule(t, 43)

	// Default Retries=2 against both backends: four backoff sleeps.
	if len(a) != 4 {
		t.Fatalf("retry sleeps = %d, want 4 (2 retries x 2 backends)", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedule lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sleep %d: %v vs %v", i, a[i], b[i])
		}
	}
	differs := len(a) != len(c)
	for i := 0; !differs && i < len(a); i++ {
		differs = a[i] != c[i]
	}
	if !differs {
		t.Fatal("different seeds produced the identical retry schedule")
	}
	// Equal jitter over a doubling base: each delay sits in
	// [base*2^i / 2, base*2^i) for the per-backend attempt index.
	base := 50 * time.Millisecond
	for i, d := range a {
		step := base << (i % 2)
		if d < step/2 || d >= step {
			t.Fatalf("sleep %d = %v outside equal-jitter window [%v, %v)", i, d, step/2, step)
		}
	}
}

// TestFrontLifecycleLeaksNothing is the goroutine-accounting gate for
// the shard layer: with background probing running, serving traffic and
// then closing the front must reclaim the prober loop and every probe
// it spawned.
func TestFrontLifecycleLeaksNothing(t *testing.T) {
	// Registered first so it runs after every other cleanup (LIFO),
	// i.e. once the backends and front are fully closed.
	t.Cleanup(testutil.VerifyNoLeaks(t))

	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	f := shard.New(shard.Options{
		Backends:      []string{a.srv.URL, b.srv.URL},
		ProbeInterval: 2 * time.Millisecond,
		Retries:       -1,
		RetryBackoff:  1,
	})
	w := classify(t, f.Handler(), `{"model":"ViT-Nano","method":"QUQ","bits":6,"regime":"full"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("classify through front: status %d: %s", w.Code, w.Body.String())
	}
	f.ProbeNow(context.Background())
	f.Close()
}
