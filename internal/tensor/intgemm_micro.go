package tensor

// The 4×4 integer GEMM micro-kernel behind intMatMulRange and
// intMatMulTRange: 16 int64 dot products of four A rows against a shared
// k×4 packed B panel, each output element owning an independent
// accumulator chain. intMicro4x4 is a variable so amd64 can swap in the
// AVX2 implementation at init when the CPU supports it; because int64
// addition and multiplication wrap modulo 2^64, every grouping of the
// same terms yields identical bits, so the vector kernel (which computes
// the low 64 bits of each product via 32×32 partial products) is
// bit-exact against this portable loop by construction.
var intMicro4x4 func(c *[16]int64, a0, a1, a2, a3, bp []int64, k int) = intMicro4x4Go

// intMicro4x4Narrow, when non-nil, is a faster micro-kernel that is only
// correct when every operand value fits in int32 (on amd64/AVX2, one
// signed VPMULDQ per product instead of three unsigned partials).
// pickIntMicro selects it after scanning both operands; the portable
// build leaves it nil and always uses intMicro4x4. Narrowness covers the
// whole integer datapath in practice: pre-shifted QUB values are bounded
// by MaxMag << Shift ≪ 2^31.
var intMicro4x4Narrow func(c *[16]int64, a0, a1, a2, a3, bp []int64, k int)

// intMicro4x4Go is the portable integer micro-kernel:
// c[r*4+j] = Σ_kk a_r[kk]·bp[kk*4+j] (mod 2^64).
func intMicro4x4Go(c *[16]int64, a0, a1, a2, a3, bp []int64, k int) {
	var c00, c01, c02, c03 int64
	var c10, c11, c12, c13 int64
	var c20, c21, c22, c23 int64
	var c30, c31, c32, c33 int64
	for kk := 0; kk < k; kk++ {
		bq := bp[kk*4 : kk*4+4]
		b0, b1, b2, b3 := bq[0], bq[1], bq[2], bq[3]
		av := a0[kk]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = a1[kk]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = a2[kk]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = a3[kk]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
	}
	c[0], c[1], c[2], c[3] = c00, c01, c02, c03
	c[4], c[5], c[6], c[7] = c10, c11, c12, c13
	c[8], c[9], c[10], c[11] = c20, c21, c22, c23
	c[12], c[13], c[14], c[15] = c30, c31, c32, c33
}
