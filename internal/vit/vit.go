package vit

import (
	"fmt"
	"quq/internal/check"

	"quq/internal/tensor"
)

// Model is the common interface of the ViT/DeiT and Swin implementations:
// a classifier over single images with instrumentable internals.
//
// Concurrency: Forward, Config, NumBlocks and Features treat the model
// as read-only — both implementations allocate every intermediate tensor
// per call and never write to parameter storage — so a model may serve
// concurrent Forward calls from multiple goroutines. Mutating operations
// (ForEachWeight used for in-place weight quantization, Params used by
// training and checkpoint loading, Clone's source enumeration) must not
// run concurrently with Forward. Taps are invoked on the calling
// goroutine; a Tap that closes over shared state needs its own
// synchronization.
type Model interface {
	// Config returns the model's configuration.
	Config() Config
	// Forward classifies one image ([channels, H, W]) and returns the
	// logits ([classes]). The opts instrument the pass; ForwardOpts{} is
	// plain inference.
	Forward(img *tensor.Tensor, opts ForwardOpts) *tensor.Tensor
	// ForEachWeight visits every GEMM weight layer with its site, in a
	// stable order. The PTQ pipeline uses it to quantize weights in
	// place on a cloned model.
	ForEachWeight(fn func(Site, *Linear))
	// Params visits every trainable parameter slice (weights, biases,
	// norms, tokens, position embeddings) in a stable order; used for
	// serialization and by the training substrate.
	Params(fn func(name string, data []float64))
	// NumBlocks returns the number of transformer blocks.
	NumBlocks() int
	// Clone returns a deep copy whose tensors share nothing with the
	// receiver.
	Clone() Model
}

// Features returns the vector the classification head consumes for img:
// the class token (ViT), the mean of class and distillation tokens
// (DeiT), or the pooled tokens (Swin), after the final LayerNorm. The
// head-fitting substrate trains a linear readout on these.
func Features(m Model, img *tensor.Tensor, opts ForwardOpts) []float64 {
	cfg := m.Config()
	var feat []float64
	outer := opts.Tap
	opts.Tap = func(site Site, x *tensor.Tensor) *tensor.Tensor {
		if outer != nil {
			if y := outer(site, x); y != nil {
				x = y
			}
		}
		if site.Block == -1 && site.Name == "head.in" {
			dim := x.Dim(1)
			feat = make([]float64, dim)
			switch cfg.Variant {
			case VariantDeiT:
				for c := 0; c < dim; c++ {
					feat[c] = (x.At(0, c) + x.At(1, c)) / 2
				}
			case VariantSwin:
				for r := 0; r < x.Dim(0); r++ {
					row := x.Row(r)
					for c := range feat {
						feat[c] += row[c]
					}
				}
				for c := range feat {
					feat[c] /= float64(x.Dim(0))
				}
			default:
				copy(feat, x.Row(0))
			}
		}
		return x
	}
	m.Forward(img, opts)
	return feat
}

// Patchify flattens img ([C, H, W]) into non-overlapping ps×ps patches:
// a [numPatches, C·ps·ps] tensor in row-major patch order.
func Patchify(img *tensor.Tensor, ps int) *tensor.Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	if h%ps != 0 || w%ps != 0 {
		panic(check.Invariantf("vit: %dx%d image not divisible into %d-pixel patches", h, w, ps))
	}
	gy, gx := h/ps, w/ps
	out := tensor.New(gy*gx, c*ps*ps)
	for py := 0; py < gy; py++ {
		for px := 0; px < gx; px++ {
			row := out.Row(py*gx + px)
			i := 0
			for ch := 0; ch < c; ch++ {
				for y := 0; y < ps; y++ {
					for x := 0; x < ps; x++ {
						row[i] = img.At(ch, py*ps+y, px*ps+x)
						i++
					}
				}
			}
		}
	}
	return out
}

// ViT implements the plain vision transformer and its DeiT variant.
type ViT struct {
	cfg    Config
	Patch  *Linear
	Cls    []float64
	Dist   []float64      // non-nil only for DeiT
	Reg    *tensor.Tensor // [Registers, Dim] high-norm register tokens; nil if none
	Pos    *tensor.Tensor
	Blocks []*Block
	Final  *LayerNorm
	Head   *Linear
}

// newViT allocates a zero-initialized ViT/DeiT for cfg.
func newViT(cfg Config) *ViT {
	m := &ViT{
		cfg:   cfg,
		Patch: NewLinear(cfg.PatchDim(), cfg.Dim),
		Cls:   make([]float64, cfg.Dim),
		Pos:   tensor.New(cfg.Tokens(), cfg.Dim),
		Final: NewLayerNorm(cfg.Dim),
		Head:  NewLinear(cfg.Dim, cfg.Classes),
	}
	if cfg.Variant == VariantDeiT {
		m.Dist = make([]float64, cfg.Dim)
	}
	if cfg.Registers > 0 {
		m.Reg = tensor.New(cfg.Registers, cfg.Dim)
	}
	for i := 0; i < cfg.Depth; i++ {
		m.Blocks = append(m.Blocks, NewBlock(cfg.Dim, cfg.Heads, cfg.MLPRatio))
	}
	return m
}

// Config implements Model.
func (m *ViT) Config() Config { return m.cfg }

// NumBlocks implements Model.
func (m *ViT) NumBlocks() int { return len(m.Blocks) }

// Forward implements Model.
func (m *ViT) Forward(img *tensor.Tensor, opts ForwardOpts) *tensor.Tensor {
	tap := opts.Tap
	patches := Patchify(img, m.cfg.PatchSize)
	patches = tap.apply(Site{-1, "patch.in", KindGEMMIn}, patches)
	emb := applyLinear(opts, Site{-1, "patch.w", KindWeight}, m.Patch, tensor.New(patches.Dim(0), m.cfg.Dim), patches)

	extra := 1
	if m.Dist != nil {
		extra = 2
	}
	nreg := 0
	if m.Reg != nil {
		nreg = m.Reg.Dim(0)
	}
	tokens := tensor.New(emb.Dim(0)+extra+nreg, m.cfg.Dim)
	copy(tokens.Row(0), m.Cls)
	if m.Dist != nil {
		copy(tokens.Row(1), m.Dist)
	}
	for r := 0; r < nreg; r++ {
		copy(tokens.Row(extra+r), m.Reg.Row(r))
	}
	for r := 0; r < emb.Dim(0); r++ {
		copy(tokens.Row(r+extra+nreg), emb.Row(r))
	}
	tokens.AddInPlace(m.Pos)
	x := tap.apply(Site{-1, "embed.out", KindActivation}, tokens)

	for i, b := range m.Blocks {
		x = b.Forward(x, 1, i, opts)
	}
	x = m.Final.Apply(x)
	x = tap.apply(Site{-1, "head.in", KindGEMMIn}, x)

	if m.Dist != nil {
		// DeiT inference: average the class- and distillation-token
		// head outputs.
		two := tensor.New(2, m.cfg.Dim)
		copy(two.Row(0), x.Row(0))
		copy(two.Row(1), x.Row(1))
		logits := applyLinear(opts, Site{-1, "head.w", KindWeight}, m.Head, tensor.New(2, m.cfg.Classes), two)
		out := tensor.New(m.cfg.Classes)
		for c := 0; c < m.cfg.Classes; c++ {
			out.Data()[c] = (logits.At(0, c) + logits.At(1, c)) / 2
		}
		return out
	}
	cls := tensor.New(1, m.cfg.Dim)
	copy(cls.Row(0), x.Row(0))
	return applyLinear(opts, Site{-1, "head.w", KindWeight}, m.Head, tensor.New(1, m.cfg.Classes), cls).Reshape(m.cfg.Classes)
}

// ForEachWeight implements Model.
func (m *ViT) ForEachWeight(fn func(Site, *Linear)) {
	fn(Site{-1, "patch.w", KindWeight}, m.Patch)
	for i, b := range m.Blocks {
		b.weights(i, fn)
	}
	fn(Site{-1, "head.w", KindWeight}, m.Head)
}

// Params implements Model.
func (m *ViT) Params(fn func(name string, data []float64)) {
	fn("patch.w", m.Patch.W.Data())
	fn("patch.b", m.Patch.B)
	fn("cls", m.Cls)
	if m.Dist != nil {
		fn("dist", m.Dist)
	}
	if m.Reg != nil {
		fn("reg", m.Reg.Data())
	}
	fn("pos", m.Pos.Data())
	for i, b := range m.Blocks {
		b.params(fmt.Sprintf("block%02d", i), fn)
	}
	fn("final.g", m.Final.Gamma)
	fn("final.b", m.Final.Beta)
	fn("head.w", m.Head.W.Data())
	fn("head.b", m.Head.B)
}

// Clone implements Model.
func (m *ViT) Clone() Model {
	c := newViT(m.cfg)
	copyParams(m, c)
	return c
}

// copyParams copies every parameter of src into dst; the two models must
// share a configuration.
func copyParams(src, dst Model) {
	var bufs [][]float64
	src.Params(func(_ string, d []float64) { bufs = append(bufs, d) })
	i := 0
	dst.Params(func(name string, d []float64) {
		if len(d) != len(bufs[i]) {
			panic(check.Invariantf("vit: parameter %s size mismatch in copy", name))
		}
		copy(d, bufs[i])
		i++
	})
	if i != len(bufs) {
		panic(check.Invariant("vit: parameter count mismatch in copy"))
	}
}
