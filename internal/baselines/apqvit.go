package baselines

import (
	"math"

	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// APQViT is the tensor-level proxy for APQ-ViT (Ding et al., MM 2022):
// asymmetric (affine) uniform quantization with an error-aware clipping
// search over both range endpoints. The original's block-wise Hessian
// calibration is replaced by per-tensor MSE scoring (DESIGN.md documents
// the substitution); the affine zero-point is the mechanism that lets it
// track asymmetric ViT activations better than symmetric schemes.
type APQViT struct{}

// Name implements ptq.Method.
func (APQViT) Name() string { return "APQ-ViT" }

// affineQuantizer maps x to round(x/scale)+zp clipped to [0, 2^b−1].
type affineQuantizer struct {
	scale float64
	zp    int64
	bits  int
}

func (a affineQuantizer) value(x float64) float64 {
	hi := int64(1)<<a.bits - 1
	q := int64(math.RoundToEven(x/a.scale)) + a.zp
	if q < 0 {
		q = 0
	}
	if q > hi {
		q = hi
	}
	return float64(q-a.zp) * a.scale
}

// Apply implements ptq.TensorQuantizer.
func (a affineQuantizer) Apply(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = a.value(v)
	}
	return out
}

// calibrateAffine searches clip fractions on both endpoints.
func calibrateAffine(xs []float64, bits int) affineQuantizer {
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	levels := float64(int64(1)<<bits - 1)
	grid := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	best := affineQuantizer{scale: (hi - lo) / levels, bits: bits}
	best.zp = int64(math.RoundToEven(-lo / best.scale))
	bestMSE := math.Inf(1)
	for _, al := range grid {
		for _, ah := range grid {
			clo, chi := lo*al, hi*ah
			if lo >= 0 {
				clo = lo // one-sided data keeps its zero anchor
			}
			if chi <= clo {
				continue
			}
			cand := affineQuantizer{scale: (chi - clo) / levels, bits: bits}
			cand.zp = int64(math.RoundToEven(-clo / cand.scale))
			var mse float64
			for _, v := range xs {
				e := v - cand.value(v)
				mse += e * e
			}
			if mse < bestMSE {
				best, bestMSE = cand, mse
			}
		}
	}
	return best
}

// CalibrateActivation implements ptq.Method.
func (APQViT) CalibrateActivation(stats *ptq.SiteStats, bits int) ptq.TensorQuantizer {
	return calibrateAffine(stats.Samples, bits)
}

// QuantizeWeight implements ptq.Method: weights are near-symmetric, so
// APQ-ViT quantizes them uniformly with clipping search.
func (APQViT) QuantizeWeight(site vit.Site, w *tensor.Tensor, bits int) {
	BaseQ{}.QuantizeWeight(site, w, bits)
}
