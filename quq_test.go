package quq_test

import (
	"testing"

	"quq"
	"quq/internal/dist"
	"quq/internal/rng"
)

// TestFacadeEndToEnd exercises the re-exported API the package comment
// advertises: calibrate, fake-quantize, encode, decode.
func TestFacadeEndToEnd(t *testing.T) {
	xs := dist.Sample(dist.PostGELU, 1<<13, rng.New(1))
	p := quq.Calibrate(xs, 6)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	regs, err := quq.RegistersFor(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[:512] {
		want := p.Value(x)
		got := quq.Decode(quq.EncodeValue(p, x), regs).Value(regs.BaseDelta)
		if got != want {
			t.Fatalf("facade round trip: %v != %v", got, want)
		}
	}
}

func TestFacadePRAMatchesInternal(t *testing.T) {
	xs := dist.Sample(dist.PreAddition, 1<<12, rng.New(2))
	a := quq.PRA(xs, 6, quq.DefaultPRAOptions())
	b := quq.PRA(xs, 6, quq.DefaultPRAOptions())
	if a.String() != b.String() {
		t.Fatal("facade PRA not deterministic")
	}
}

func TestFacadeUniform(t *testing.T) {
	if got := quq.Uniform(0.6, 1, 4); got != 1 {
		t.Fatalf("Uniform = %v", got)
	}
}
