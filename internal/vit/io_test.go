package vit

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"quq/internal/tensor"
)

// paramSnapshot copies every parameter slice into a name-keyed map.
func paramSnapshot(m Model) map[string][]float64 {
	out := make(map[string][]float64)
	m.Params(func(name string, data []float64) {
		out[name] = append([]float64(nil), data...)
	})
	return out
}

// TestSaveLoadRoundTripZoo round-trips every zoo config plus ViT-Nano
// through the checkpoint container and demands bit-identical parameters.
func TestSaveLoadRoundTripZoo(t *testing.T) {
	configs := append([]Config{ViTNano}, ZooConfigs...)
	for i, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m := New(cfg, 2024+uint64(i)*1000)
			var buf bytes.Buffer
			if err := Save(m, &buf); err != nil {
				t.Fatal(err)
			}
			got, err := Load(cfg, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			want := paramSnapshot(m)
			gotParams := paramSnapshot(got)
			if len(want) != len(gotParams) {
				t.Fatalf("param count: saved %d, loaded %d", len(want), len(gotParams))
			}
			for name, w := range want {
				g, ok := gotParams[name]
				if !ok {
					t.Fatalf("loaded model missing parameter %q", name)
				}
				if len(g) != len(w) {
					t.Fatalf("parameter %q: saved %d values, loaded %d", name, len(w), len(g))
				}
				for j := range w {
					if g[j] != w[j] {
						t.Fatalf("parameter %q[%d]: %v != %v (not bit-identical)", name, j, g[j], w[j])
					}
				}
			}
		})
	}
}

// TestSaveLoadForwardIdentity: a reloaded ViT-Nano must produce
// bit-identical logits, which is what the serving checkpoint path
// actually relies on.
func TestSaveLoadForwardIdentity(t *testing.T) {
	m := New(ViTNano, 99)
	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(ViTNano, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(ViTNano.Channels, ViTNano.ImageSize, ViTNano.ImageSize)
	for i := range img.Data() {
		img.Data()[i] = float64(i%17)/17 - 0.5
	}
	want := m.Forward(img, ForwardOpts{}).Data()
	out := got.Forward(img, ForwardOpts{}).Data()
	for j := range want {
		if out[j] != want[j] {
			t.Fatalf("logit %d: %v != %v after reload", j, out[j], want[j])
		}
	}
}

// TestSaveFileLoadFile exercises the filesystem wrappers.
func TestSaveFileLoadFile(t *testing.T) {
	m := New(ViTNano, 7)
	path := filepath.Join(t.TempDir(), "nano.ckpt")
	if err := SaveFile(m, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(ViTNano, path)
	if err != nil {
		t.Fatal(err)
	}
	want := paramSnapshot(m)
	for name, w := range paramSnapshot(got) {
		for j := range w {
			if w[j] != want[name][j] {
				t.Fatalf("parameter %q differs after file round trip", name)
			}
		}
	}
	if _, err := LoadFile(ViTNano, filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("LoadFile on a missing path succeeded")
	}
}

// TestLoadRejectsCorruptCheckpoints walks the error taxonomy: bad magic,
// truncation, and architecture mismatch must all fail loudly rather
// than produce a silently wrong model.
func TestLoadRejectsCorruptCheckpoints(t *testing.T) {
	m := New(ViTNano, 7)
	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		copy(bad, "NOTAVIT0")
		if _, err := Load(ViTNano, bytes.NewReader(bad)); err == nil ||
			!strings.Contains(err.Error(), "magic") {
			t.Fatalf("err = %v, want bad-magic error", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{4, len(checkpointMagic) + 2, len(blob) / 2, len(blob) - 3} {
			if _, err := Load(ViTNano, bytes.NewReader(blob[:n])); err == nil {
				t.Fatalf("truncation at %d bytes accepted", n)
			}
		}
	})

	t.Run("config mismatch", func(t *testing.T) {
		// A ViT-Nano checkpoint cannot populate a ViT-S: parameter shapes
		// (and for Swin, names) differ.
		if _, err := Load(ZooConfigs[0], bytes.NewReader(blob)); err == nil {
			t.Fatal("ViT-Nano checkpoint loaded into ViT-S")
		}
	})

	t.Run("empty", func(t *testing.T) {
		if _, err := Load(ViTNano, bytes.NewReader(nil)); err == nil {
			t.Fatal("empty checkpoint accepted")
		}
	})
}
