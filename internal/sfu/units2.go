package sfu

import (
	"fmt"
	"quq/internal/check"

	"quq/internal/quant"
	"quq/internal/qub"
)

// AddUnit is the element-wise-addition SFU of §4.2: it decodes two QUB
// streams with different base scale factors, adds them in fixed point,
// and requantizes the sum into the residual tensor's QUQ code space —
// the integer realization of a residual connection.
type AddUnit struct {
	a, b *Unit // reuse the decode/requantize scaling machinery
}

// NewAddUnit builds an adder for operands quantized with pa and pb whose
// sum is quantized with pout.
func NewAddUnit(pa, pb, pout *quant.Params) (*AddUnit, error) {
	ua, err := NewUnit(pa, pout)
	if err != nil {
		return nil, fmt.Errorf("sfu: add operand a: %w", err)
	}
	ub, err := NewUnit(pb, pout)
	if err != nil {
		return nil, fmt.Errorf("sfu: add operand b: %w", err)
	}
	return &AddUnit{a: ua, b: ub}, nil
}

// Add returns the requantized element-wise sum of the two encoded
// streams.
func (u *AddUnit) Add(as, bs []qub.Word) []qub.Word {
	if len(as) != len(bs) {
		panic(check.Invariant("sfu: Add length mismatch"))
	}
	out := make([]qub.Word, len(as))
	for i := range as {
		out[i] = u.a.requantize(u.a.decodeFixed(as[i]) + u.b.decodeFixed(bs[i]))
	}
	return out
}

// OutRegisters returns the registers for decoding the sums.
func (u *AddUnit) OutRegisters() (qub.Registers, error) { return u.a.OutRegisters() }

// LayerNormUnit is the LayerNorm SFU: QUB rows in, QUB rows out, with the
// affine parameters held in fixed point.
type LayerNormUnit struct {
	u           *Unit
	gamma, beta []int64
}

// NewLayerNormUnit builds a LayerNorm SFU over `dim` channels for inputs
// quantized with pin and outputs quantized with pout.
func NewLayerNormUnit(pin, pout *quant.Params, gamma, beta []float64) (*LayerNormUnit, error) {
	if len(gamma) != len(beta) {
		return nil, fmt.Errorf("sfu: gamma/beta length mismatch")
	}
	u, err := NewUnit(pin, pout)
	if err != nil {
		return nil, err
	}
	ln := &LayerNormUnit{u: u, gamma: make([]int64, len(gamma)), beta: make([]int64, len(beta))}
	for i := range gamma {
		ln.gamma[i] = ToFixed(gamma[i])
		ln.beta[i] = ToFixed(beta[i])
	}
	return ln, nil
}

// Row normalizes one token row (length must match the affine parameters).
func (l *LayerNormUnit) Row(row []qub.Word) []qub.Word {
	if len(row) != len(l.gamma) {
		panic(check.Invariantf("sfu: LayerNorm row width %d, want %d", len(row), len(l.gamma)))
	}
	fixed := make([]int64, len(row))
	for i, w := range row {
		fixed[i] = l.u.decodeFixed(w)
	}
	LayerNorm(fixed, fixed, l.gamma, l.beta)
	out := make([]qub.Word, len(row))
	for i, v := range fixed {
		out[i] = l.u.requantize(v)
	}
	return out
}

// OutRegisters returns the registers for decoding the normalized rows.
func (l *LayerNormUnit) OutRegisters() (qub.Registers, error) { return l.u.OutRegisters() }
