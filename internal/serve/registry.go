package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quq/internal/baselines"
	"quq/internal/data"
	"quq/internal/ptq"
	"quq/internal/snapstore"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// Key identifies one quantized-model registry entry: everything that
// determines the calibration artifact.
type Key struct {
	Config string     // model name from the zoo ("ViT-S", ..., "ViT-Nano")
	Method string     // quantization method name ("QUQ", "BaseQ", ...)
	Bits   int        // uniform weight/activation bit-width
	Regime ptq.Regime // partial (GEMM-only) or full quantization
}

// String renders the key the way /models and logs display it.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s/w%da%d/%s", k.Config, k.Method, k.Bits, k.Bits, k.Regime)
}

// ParseRegime maps the wire names onto ptq regimes. The empty string
// defaults to partial — the paper's headline (Table 2) setting.
func ParseRegime(s string) (ptq.Regime, error) {
	switch strings.ToLower(s) {
	case "", "partial":
		return ptq.Partial, nil
	case "full":
		return ptq.Full, nil
	}
	return 0, fmt.Errorf("%w: regime %q (want \"partial\" or \"full\")", ErrBadRequest, s)
}

// Method construction is by name so the registry key stays a value type.
// The table lists every ptq.Method in the repo; order is the menu order
// /models advertises.
var methodNames = []string{"QUQ", "BaseQ", "PTQ4ViT", "APQ-ViT", "FQ-ViT", "BiScaled-FxP"}

// canonicalNames maps the lower-cased spelling of every method and model
// name to its canonical form. Key canonicalization is load-bearing for
// sharding: quq-shard hashes the canonical key string onto the ring, so
// "Quq" and "quq" must resolve to one spelling (and one shard) before
// hashing, not after.
var canonicalNames = sync.OnceValue(func() map[string]string {
	m := make(map[string]string)
	for _, name := range methodNames {
		m[strings.ToLower(name)] = name
	}
	for _, cfg := range append(append([]vit.Config(nil), vit.ZooConfigs...), vit.ViTNano) {
		m[strings.ToLower(cfg.Name)] = cfg.Name
	}
	return m
})

// CanonicalMethod resolves a wire method name, case-insensitively, to
// its canonical registry spelling; the empty string defaults to QUQ.
func CanonicalMethod(name string) (string, bool) {
	if name == "" {
		return "QUQ", true
	}
	canon, ok := canonicalNames()[strings.ToLower(name)]
	return canon, ok && isMethod(canon)
}

// CanonicalConfig resolves a wire model name, case-insensitively, to its
// canonical zoo spelling; the empty string defaults to ViT-Nano.
func CanonicalConfig(name string) (string, bool) {
	if name == "" {
		return vit.ViTNano.Name, true
	}
	canon, ok := canonicalNames()[strings.ToLower(name)]
	return canon, ok && !isMethod(canon)
}

func isMethod(canon string) bool {
	for _, name := range methodNames {
		if name == canon {
			return true
		}
	}
	return false
}

// Key bit-width protocol bounds: ptq enforces the lower bound, the
// default RegistryOptions.MaxBits the upper. CanonicalKey applies both so
// a front-end can reject garbage before hashing.
const (
	MinBits = 3
	MaxBits = 16
)

// CanonicalKey fills a key's defaults (ViT-Nano, QUQ, 6 bits) and
// normalizes model/method spelling, rejecting unknown enum values and
// out-of-protocol bit-widths. Every key is canonicalized before it is
// hashed (quq-shard) or used as a cache key (Registry.Get), so the two
// can never disagree on identity.
func CanonicalKey(k Key) (Key, error) {
	cfg, ok := CanonicalConfig(k.Config)
	if !ok {
		return Key{}, fmt.Errorf("%w %q", ErrUnknownModel, k.Config)
	}
	k.Config = cfg
	method, ok := CanonicalMethod(k.Method)
	if !ok {
		return Key{}, fmt.Errorf("%w %q", ErrUnknownMethod, k.Method)
	}
	k.Method = method
	if k.Bits == 0 {
		k.Bits = 6
	}
	if k.Bits < MinBits || k.Bits > MaxBits {
		return Key{}, fmt.Errorf("%w: bits %d out of range [%d, %d]", ErrBadRequest, k.Bits, MinBits, MaxBits)
	}
	if k.Regime != ptq.Partial && k.Regime != ptq.Full {
		return Key{}, fmt.Errorf("%w: unknown regime", ErrBadRequest)
	}
	return k, nil
}

// KeyFromWire canonicalizes the wire form of a key selection — the
// (model, method, bits, regime) fields of a classify/quantize body —
// shared by the serving layer and the quq-shard front-end.
func KeyFromWire(model, method string, bits int, regime string) (Key, error) {
	rg, err := ParseRegime(regime)
	if err != nil {
		return Key{}, err
	}
	return CanonicalKey(Key{Config: model, Method: method, Bits: bits, Regime: rg})
}

// ParseKey inverts Key.String: "Config/Method/wNaN/regime" back into a
// canonical key. The drain handoff in quq-shard lives on this — it
// learns a leaving backend's entries from /models (key strings) and
// must turn them back into quantize requests for the new owners.
func ParseKey(s string) (Key, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 4 {
		return Key{}, fmt.Errorf("%w: key %q is not Config/Method/wNaN/regime", ErrBadRequest, s)
	}
	var wb, ab int
	if _, err := fmt.Sscanf(parts[2], "w%da%d", &wb, &ab); err != nil || wb != ab {
		return Key{}, fmt.Errorf("%w: key %q has malformed bit-width %q", ErrBadRequest, s, parts[2])
	}
	return KeyFromWire(parts[0], parts[1], wb, parts[3])
}

func newMethod(name string) (ptq.Method, bool) {
	switch name {
	case "", "QUQ":
		return ptq.NewQUQ(), true
	case "BaseQ":
		return baselines.BaseQ{}, true
	case "PTQ4ViT":
		return baselines.PTQ4ViT{}, true
	case "APQ-ViT":
		return baselines.APQViT{}, true
	case "FQ-ViT":
		return baselines.FQViT{}, true
	case "BiScaled-FxP":
		return baselines.BiScaled{}, true
	}
	return nil, false
}

// MethodNames lists the quantization methods the registry can build.
func MethodNames() []string { return append([]string(nil), methodNames...) }

// Registry errors. ErrBadRequest wraps every client-side validation
// failure so the HTTP layer can map the whole family to 400.
var (
	ErrBadRequest    = errors.New("serve: bad request")
	ErrUnknownModel  = fmt.Errorf("%w: unknown model", ErrBadRequest)
	ErrUnknownMethod = fmt.Errorf("%w: unknown method", ErrBadRequest)
)

// ErrWarming is returned by lookups while the warm-restart pass is still
// installing snapshot entries: the state the client wants may be seconds
// from ready, so the HTTP layer maps this to a retryable 503 instead of
// starting a redundant calibration (or serving a stale miss).
var ErrWarming = errors.New("serve: warm restart in progress, retry shortly")

// RegistryOptions configures model construction.
type RegistryOptions struct {
	// Seed drives synthetic weights and calibration images (default 2024,
	// the experiments' seed).
	Seed uint64
	// CalibImages per model (default 32, the paper's protocol).
	CalibImages int
	// MaxSamplesPerSite caps calibration reservoirs (0 = ptq default).
	MaxSamplesPerSite int
	// Checkpoint optionally points at a trained ViT-Nano checkpoint
	// (artifacts/vit-nano.ckpt); when set, the ViT-Nano base model is
	// loaded from it instead of using synthetic weights.
	Checkpoint string
	// MaxBits bounds requested bit-widths (default 16; ptq enforces the
	// lower bound of 3).
	MaxBits int
	// BuildHook, when set, runs at the start of every calibration build
	// with the entry's key. It is the chaos layer's calibration seam: a
	// hook that sleeps simulates slow calibration, a hook that returns
	// an error simulates a failing one (the entry is then evicted so a
	// later request can retry). Not for production use.
	BuildHook func(key Key) error
	// SnapshotDir, when set, makes calibration durable: every successful
	// build is committed there as a content-addressed snapshot file
	// (write-temp, fsync, rename) and the registry warm-restarts from the
	// directory on construction — previously-calibrated keys come back
	// ready with zero recalibration. Files whose digest or payload fails
	// verification are quarantined (renamed aside), never served and
	// never fatal. Empty disables persistence.
	SnapshotDir string
	// SnapshotLoadHook, when set, runs on the warm-restart goroutine
	// after the snapshot directory has been read, with the number of
	// verified snapshots about to be installed. It is the chaos layer's
	// restart seam: a hook that blocks holds the registry in its warming
	// state (requests answer 503) for as long as the scenario needs. Not
	// for production use.
	SnapshotLoadHook func(n int)
	// IntPath enables the fully-integer weight path (-int-path flag) on
	// every QUQ-method model the registry builds: weight GEMMs run on
	// resident pre-shifted int64 operands through the tensor kernel
	// layer instead of rehydrating float64 weights. Models quantized
	// with other methods are unaffected — the path needs recorded QUQ
	// weight params — and logits stay byte-identical across mixed
	// float/int backends on the serving requantized grid. The setting
	// can be changed at runtime with Registry.SetIntPath.
	IntPath bool
}

func (o *RegistryOptions) defaults() {
	if o.Seed == 0 {
		o.Seed = 2024
	}
	if o.CalibImages == 0 {
		o.CalibImages = 32
	}
	if o.MaxBits == 0 {
		o.MaxBits = 16
	}
}

// entry is one singleflight build slot: the first Get for a key creates
// it, builds synchronously, then closes ready; concurrent callers wait.
type entry struct {
	key     Key
	ready   chan struct{}
	qm      *ptq.QuantizedModel
	err     error
	buildMS float64
	digest  string       // hex content address of the entry's snapshot; "" if not snapshottable
	replica atomic.Int32 // replica index stamped by the front-end; -1 until known
}

// baseEntry is the per-config singleflight slot for the FP32 base model
// and its calibration set, shared by every method/bits/regime entry of
// that config.
type baseEntry struct {
	ready chan struct{}
	model vit.Model
	calib []*tensor.Tensor
	err   error
}

// Registry lazily builds and caches quantized models. All methods are
// safe for concurrent use.
type Registry struct {
	opts    RegistryOptions
	met     *Metrics
	configs map[string]vit.Config
	names   []string // sorted config names

	mu      sync.Mutex
	bases   map[string]*baseEntry
	entries map[Key]*entry
	builds  sync.WaitGroup // joins detached buildEntry goroutines in Drain

	// store is the durable snapshot store (nil when SnapshotDir is
	// empty); warm closes once the warm-restart pass has finished
	// installing on-disk entries — requests arriving earlier are told to
	// retry (503) rather than being served a stale miss.
	store *snapstore.Store
	warm  chan struct{}

	// intPath is the live value of RegistryOptions.IntPath; reads happen
	// at build completion, writes through SetIntPath.
	intPath atomic.Bool
}

// NewRegistry builds a registry over the proxy zoo plus ViT-Nano.
// met may be nil (no instrumentation).
func NewRegistry(opts RegistryOptions, met *Metrics) *Registry {
	opts.defaults()
	r := &Registry{
		opts:    opts,
		met:     met,
		configs: make(map[string]vit.Config),
		bases:   make(map[string]*baseEntry),
		entries: make(map[Key]*entry),
	}
	for _, cfg := range append(append([]vit.Config(nil), vit.ZooConfigs...), vit.ViTNano) {
		r.configs[cfg.Name] = cfg
		r.names = append(r.names, cfg.Name)
	}
	sort.Strings(r.names)
	r.intPath.Store(opts.IntPath)
	r.warm = make(chan struct{})
	if opts.SnapshotDir == "" {
		close(r.warm)
		return r
	}
	store, _, err := snapstore.Open(opts.SnapshotDir)
	if err != nil {
		// A broken snapshot dir costs durability, never serving: run
		// memory-only and surface the failure in metrics.
		if met != nil {
			met.SnapshotErrors.Inc()
		}
		close(r.warm)
		return r
	}
	r.store = store
	r.builds.Add(1)
	go r.warmRestart()
	return r
}

// Warming reports whether the warm-restart pass is still installing
// snapshot entries. While true, lookups return ErrWarming so clients
// retry instead of triggering recalibration of keys that are about to
// come back from disk.
func (r *Registry) Warming() bool {
	select {
	case <-r.warm:
		return false
	default:
		return true
	}
}

// Config returns the zoo configuration for a model name.
func (r *Registry) Config(name string) (vit.Config, bool) {
	cfg, ok := r.configs[name]
	return cfg, ok
}

// ConfigNames lists the servable models in sorted order.
func (r *Registry) ConfigNames() []string { return append([]string(nil), r.names...) }

// validate rejects malformed keys before they occupy a build slot.
func (r *Registry) validate(key Key) error {
	if _, ok := r.configs[key.Config]; !ok {
		return fmt.Errorf("%w %q", ErrUnknownModel, key.Config)
	}
	if _, ok := newMethod(key.Method); !ok {
		return fmt.Errorf("%w %q", ErrUnknownMethod, key.Method)
	}
	if key.Bits < 3 || key.Bits > r.opts.MaxBits {
		return fmt.Errorf("%w: bits %d out of range [3, %d]", ErrBadRequest, key.Bits, r.opts.MaxBits)
	}
	if key.Regime != ptq.Partial && key.Regime != ptq.Full {
		return fmt.Errorf("%w: unknown regime", ErrBadRequest)
	}
	return nil
}

// Get returns the quantized model for key, building it on first use.
// The key is canonicalized first, so two spellings of one selection can
// never occupy two build slots. The first Get for a key starts the
// build on a detached goroutine and every caller — the first included —
// waits for it with its own context, so a client that disconnects
// mid-calibration abandons only its wait: the build always runs to
// completion and its result is cached for every future request (the
// calibrate-once contract holds even when the triggering client is
// gone). A build that fails is evicted after its waiters are notified,
// so a transient calibration failure does not poison the key forever.
// The boolean reports whether the model was already cached.
func (r *Registry) Get(ctx context.Context, key Key) (*ptq.QuantizedModel, bool, error) {
	key, err := CanonicalKey(key)
	if err != nil {
		return nil, false, err
	}
	if err := r.validate(key); err != nil {
		return nil, false, err
	}
	if r.Warming() {
		return nil, false, ErrWarming
	}
	r.mu.Lock()
	e, cached := r.entries[key]
	if !cached {
		e = &entry{key: key, ready: make(chan struct{})}
		e.replica.Store(-1)
		r.entries[key] = e
		r.builds.Add(1)
		go r.buildEntry(e)
	}
	r.mu.Unlock()

	if r.met != nil {
		if cached {
			r.met.CacheHits.Inc()
		} else {
			r.met.CacheMisses.Inc()
		}
	}
	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, cached, ctx.Err()
	}
	return e.qm, cached, e.err
}

// buildEntry performs one singleflight build on its own goroutine,
// publishes the result, and evicts the entry on failure so the next
// request retries instead of inheriting a stale error.
func (r *Registry) buildEntry(e *entry) {
	defer r.builds.Done()
	start := time.Now()
	e.qm, e.err = r.build(e.key)
	e.buildMS = float64(time.Since(start)) / float64(time.Millisecond)
	if r.met != nil {
		r.met.BuildSeconds.Observe(time.Since(start).Seconds())
	}
	if e.err != nil {
		r.mu.Lock()
		// Only evict our own slot: a concurrent retry may already have
		// replaced it.
		if r.entries[e.key] == e {
			delete(r.entries, e.key)
		}
		r.mu.Unlock()
	} else {
		// Commit the build to the snapshot store (and stamp the entry's
		// digest) before publishing: a waiter that sees ready also sees
		// the digest.
		r.persist(e)
	}
	close(e.ready)
}

// NoteReplica records which replica slot this process holds for a key,
// as stamped by the replicating front-end (the X-Quq-Replica request
// header). The index is advisory observability — it never enters the
// cache key, so replica 0 and replica 1 of one selection are still one
// entry per process — and only the first non-negative note sticks: a
// key's replica position on a given backend is fixed until the ring
// moves it, at which point the entry itself is what gets rebuilt.
func (r *Registry) NoteReplica(key Key, replica int) {
	if replica < 0 {
		return
	}
	key, err := CanonicalKey(key)
	if err != nil {
		return
	}
	r.mu.Lock()
	e := r.entries[key]
	r.mu.Unlock()
	if e != nil {
		e.replica.CompareAndSwap(-1, int32(replica))
	}
}

// Drain waits until every detached build goroutine has finished or ctx
// expires. Builds are detached from their triggering client by design
// (the calibrate-once contract), so graceful shutdown must join them
// here — otherwise a calibration in flight at exit is silently killed
// mid-write with its entry published to nobody.
func (r *Registry) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		r.builds.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// build constructs the quantized model for a validated key.
func (r *Registry) build(key Key) (*ptq.QuantizedModel, error) {
	if r.opts.BuildHook != nil {
		if err := r.opts.BuildHook(key); err != nil {
			return nil, fmt.Errorf("serve: calibration for %s failed: %w", key, err)
		}
	}
	base, calib, err := r.baseModel(key.Config)
	if err != nil {
		return nil, err
	}
	method, _ := newMethod(key.Method)
	qm, err := ptq.Quantize(base, method, ptq.CalibOptions{
		Bits:              key.Bits,
		Regime:            key.Regime,
		Images:            calib,
		MaxSamplesPerSite: r.opts.MaxSamplesPerSite,
	})
	if err != nil {
		return nil, err
	}
	if r.intPath.Load() && qm.WeightParams != nil {
		if err := qm.SetIntPath(true); err != nil {
			return nil, fmt.Errorf("serve: int path for %s: %w", key, err)
		}
	}
	return qm, nil
}

// SetIntPath toggles the integer weight path at runtime: future builds
// adopt the setting, and every cached model that supports the path
// (recorded QUQ weight params) is toggled in place — safe under live
// traffic, since the engine pointer is atomic per model. It returns the
// number of cached models toggled. A build racing the toggle may finish
// with the previous setting; re-issuing the call converges it.
func (r *Registry) SetIntPath(on bool) (int, error) {
	r.intPath.Store(on)
	r.mu.Lock()
	list := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		list = append(list, e)
	}
	r.mu.Unlock()
	toggled := 0
	for _, e := range list {
		select {
		case <-e.ready:
		default:
			continue // still building; adopts the stored setting on completion
		}
		if e.qm == nil || e.qm.WeightParams == nil {
			continue
		}
		if err := e.qm.SetIntPath(on); err != nil {
			return toggled, fmt.Errorf("serve: int path for %s: %w", e.key, err)
		}
		toggled++
	}
	return toggled, nil
}

// baseModel returns the FP32 base model and calibration set for a config,
// building them once (their own singleflight: two different method keys
// on the same config must not duplicate the work or diverge on seeds).
func (r *Registry) baseModel(name string) (vit.Model, []*tensor.Tensor, error) {
	r.mu.Lock()
	be, ok := r.bases[name]
	if !ok {
		be = &baseEntry{ready: make(chan struct{})}
		r.bases[name] = be
	}
	r.mu.Unlock()
	if ok {
		<-be.ready
		return be.model, be.calib, be.err
	}

	cfg := r.configs[name]
	seed := r.baseSeed(name)
	if name == vit.ViTNano.Name && r.opts.Checkpoint != "" {
		be.model, be.err = vit.LoadFile(cfg, r.opts.Checkpoint)
	} else {
		be.model = vit.New(cfg, seed)
	}
	if be.err == nil {
		be.calib = data.CalibrationSet(cfg, r.opts.CalibImages, seed)
	}
	close(be.ready)
	return be.model, be.calib, be.err
}

// baseSeed derives the per-config seed with the experiments' convention
// (BuildZoo offsets the shared seed by 1000 per zoo position); ViT-Nano
// sits after the zoo.
func (r *Registry) baseSeed(name string) uint64 {
	for i, cfg := range vit.ZooConfigs {
		if cfg.Name == name {
			return r.opts.Seed + uint64(i)*1000
		}
	}
	return r.opts.Seed + uint64(len(vit.ZooConfigs))*1000
}

// EntryInfo is the /models view of one registry entry. Replica is the
// replica slot the front-end stamped on requests for this key (-1 for
// direct, unreplicated traffic).
type EntryInfo struct {
	Key     string  `json:"key"`
	Ready   bool    `json:"ready"`
	Error   string  `json:"error,omitempty"`
	BuildMS float64 `json:"build_ms,omitempty"`
	Replica int     `json:"replica"`
	// Digest is the hex SHA-256 content address of the entry's snapshot
	// payload — identical across replicas exactly when their calibrated
	// state is byte-identical, which is what the anti-entropy sweeper
	// compares. Empty for entries that are not snapshottable.
	Digest string `json:"digest,omitempty"`
}

// Entries snapshots the registry in deterministic (key-string) order.
func (r *Registry) Entries() []EntryInfo {
	r.mu.Lock()
	list := make([]*entry, 0, len(r.entries))
	// Map order is irrelevant here: the snapshot is sorted below.
	for _, e := range r.entries {
		list = append(list, e)
	}
	r.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].key.String() < list[j].key.String() })
	out := make([]EntryInfo, 0, len(list))
	for _, e := range list {
		info := EntryInfo{Key: e.key.String(), Replica: int(e.replica.Load())}
		select {
		case <-e.ready:
			info.Ready = e.err == nil
			info.BuildMS = e.buildMS
			info.Digest = e.digest
			if e.err != nil {
				info.Error = e.err.Error()
			}
		default:
		}
		out = append(out, info)
	}
	return out
}
