package ptq

import (
	"math"

	"quq/internal/rng"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// SiteStats accumulates calibration statistics for one quantization
// point: a bounded reservoir of samples, the exact extremes (the coarse
// quantization ranges must never be set from a lossy sample), and
// per-channel absolute maxima over the tensor's last axis (used by the
// row-wise/power-of-two-factor baselines).
type SiteStats struct {
	Site vit.Site
	// Samples is a uniform reservoir over all observed elements, with
	// the exact Min and Max appended so range-based calibration sees the
	// true extremes. SampleChans[i] is the last-axis channel Samples[i]
	// came from (-1 for the appended extremes), which the index-table
	// and per-channel baselines need.
	Samples     []float64
	SampleChans []int32
	Min, Max    float64
	// LastDim is the tensor's channel width; ChanAbsMax[c] is the
	// largest |x| seen in channel c, and ChanSqSum[c] accumulates Σx²
	// per channel (ChanMeanSq derives E[x²], the diagonal-Hessian proxy
	// the input-aware weight calibration weighs rows with).
	LastDim    int
	ChanAbsMax []float64
	ChanSqSum  []float64
	chanCount  int64

	seen int64
	src  *rng.Source
	cap  int
}

// observe folds one tensor into the statistics via reservoir sampling.
func (s *SiteStats) observe(x *tensor.Tensor) {
	d := x.Data()
	cols := x.Dim(x.Rank() - 1)
	if s.LastDim == 0 {
		s.LastDim = cols
		s.ChanAbsMax = make([]float64, cols)
		s.ChanSqSum = make([]float64, cols)
	}
	trackChans := cols == s.LastDim
	for i, v := range d {
		if s.seen == 0 || v < s.Min {
			s.Min = v
		}
		if s.seen == 0 || v > s.Max {
			s.Max = v
		}
		if trackChans {
			ch := i % cols
			if a := math.Abs(v); a > s.ChanAbsMax[ch] {
				s.ChanAbsMax[ch] = a
			}
			s.ChanSqSum[ch] += v * v
			s.chanCount++
		}
		s.seen++
		ch := int32(-1)
		if trackChans {
			ch = int32(i % cols)
		}
		if len(s.Samples) < s.cap {
			s.Samples = append(s.Samples, v)
			s.SampleChans = append(s.SampleChans, ch)
		} else if j := s.src.Intn(int(s.seen)); j < s.cap {
			s.Samples[j] = v
			s.SampleChans[j] = ch
		}
	}
}

// finalize appends the exact extremes to the reservoir.
func (s *SiteStats) finalize() {
	if s.seen == 0 {
		return
	}
	s.Samples = append(s.Samples, s.Min, s.Max)
	s.SampleChans = append(s.SampleChans, -1, -1)
}

// Seen returns the total number of elements observed.
func (s *SiteStats) Seen() int64 { return s.seen }

// ChanMeanSq returns E[x²] per channel, or nil if no channel-aligned
// data was observed.
func (s *SiteStats) ChanMeanSq() []float64 {
	if s.chanCount == 0 || s.LastDim == 0 {
		return nil
	}
	perChan := float64(s.chanCount) / float64(s.LastDim)
	out := make([]float64, s.LastDim)
	for c, sq := range s.ChanSqSum {
		out[c] = sq / perChan
	}
	return out
}

// Collect runs the model in FP32 over the calibration images and gathers
// SiteStats for every activation site. maxSamples caps each reservoir
// (0 = 32768).
func Collect(m vit.Model, images []*tensor.Tensor, maxSamples int) map[string]*SiteStats {
	if maxSamples <= 0 {
		maxSamples = 32768
	}
	stats := make(map[string]*SiteStats)
	tap := func(site vit.Site, x *tensor.Tensor) *tensor.Tensor {
		key := site.Key()
		st, ok := stats[key]
		if !ok {
			st = &SiteStats{
				Site: site,
				cap:  maxSamples,
				src:  rng.New(hashKey(key)),
			}
			stats[key] = st
		}
		st.observe(x)
		return x
	}
	for _, img := range images {
		m.Forward(img, vit.ForwardOpts{Tap: tap})
	}
	for _, st := range stats {
		st.finalize()
	}
	return stats
}

// hashKey derives a deterministic reservoir seed from a site key (FNV-1a).
func hashKey(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
