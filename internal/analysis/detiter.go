package analysis

import (
	"go/ast"
	"go/types"
)

// DetIter flags `range` over a map in code that emits experiment
// artifacts. The experiment outputs (tables, CSV files) are compared
// byte-for-byte across runs — the repo's reproducibility contract — and
// Go randomizes map iteration order, so a map range anywhere in an
// emission path can silently permute rows between runs. Iterate a
// sorted key slice instead, or — when the collected values are sorted
// before use — annotate the site with //quq:maporder-ok and the reason.
//
// Scope: the experiments package itself, plus any file that writes
// artifacts (calls os.WriteFile / os.Create / os.OpenFile or builds a
// csv.Writer).
var DetIter = &Analyzer{
	Name:      "detiter",
	Doc:       "artifact-emitting code must not depend on map iteration order (byte-for-byte reproducibility)",
	Directive: "maporder-ok",
	Run:       runDetIter,
}

func runDetIter(pass *Pass) {
	inScope := pass.PkgPath == "quq/internal/experiments"
	for _, f := range pass.Files {
		if !inScope && !writesArtifacts(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(rng.Pos(), "range over %s iterates in randomized order; artifact output must be deterministic — iterate sorted keys", tv.Type)
			}
			return true
		})
	}
}

// writesArtifacts reports whether the file contains a call that opens
// or writes an output file.
func writesArtifacts(pass *Pass, f *ast.File) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isPkgCall(pass.Info, call, "os", "WriteFile"),
			isPkgCall(pass.Info, call, "os", "Create"),
			isPkgCall(pass.Info, call, "os", "OpenFile"),
			isPkgCall(pass.Info, call, "encoding/csv", "NewWriter"):
			found = true
			return false
		}
		return true
	})
	return found
}
