// Command quq-sim drives the QUA accelerator simulator on a quantized
// GEMM workload: it calibrates QUQ parameters for synthetic operands,
// encodes them as QUBs, runs the bit-exact integer datapath, and reports
// cycles, utilization, accuracy against the float reference, and the
// area/power of the configured array.
//
// Usage:
//
//	quq-sim [-n 16] [-bits 6] [-m 64] [-k 96] [-o 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"quq/internal/accel"
	"quq/internal/data"
	"quq/internal/dist"
	"quq/internal/hweval"
	"quq/internal/quant"
	"quq/internal/rng"
	"quq/internal/tensor"
	"quq/internal/vit"
)

func main() {
	n := flag.Int("n", 16, "PE array side")
	bits := flag.Int("bits", 6, "operand bit-width")
	m := flag.Int("m", 64, "GEMM rows (activations)")
	k := flag.Int("k", 96, "GEMM inner dimension")
	o := flag.Int("o", 64, "GEMM columns (output channels)")
	seed := flag.Uint64("seed", 1, "workload seed")
	model := flag.Bool("model", false, "run a whole ViT-Nano inference on the integer datapath instead of one GEMM")
	flag.Parse()
	log.SetFlags(0)

	if *model {
		runModel(*n, *bits, *seed)
		return
	}

	src := rng.New(*seed)
	xs := dist.Sample(dist.PreAddition, *m**k, src.Split())
	ws := dist.Sample(dist.QueryWeight, *k**o, src.Split())
	x := tensor.FromSlice(xs, *m, *k)
	w := tensor.FromSlice(ws, *k, *o)

	px := quant.PRA(x.Data(), *bits, quant.DefaultPRAOptions())
	pw := quant.PRA(w.Data(), *bits, quant.DefaultPRAOptions())
	fmt.Printf("activation quantizer: %v\n", px)
	fmt.Printf("weight quantizer:     %v\n", pw)

	ql, err := accel.NewQuantizedLinear(px, pw)
	if err != nil {
		log.Fatal(err)
	}

	// Output quantizer from the float product.
	ref := tensor.MatMul(x, w)
	pout := quant.PRA(ref.Data(), *bits, quant.DefaultPRAOptions())
	qu, err := accel.NewQuantizeUnit(pout, ql.AccUnit())
	if err != nil {
		log.Fatal(err)
	}

	cfg := accel.ArrayConfig{N: *n, Bits: *bits}
	out, res, err := ql.Run(cfg, x, w, qu)
	if err != nil {
		log.Fatal(err)
	}

	// Fidelity versus the float fake-quantization pipeline.
	xq := x.Clone()
	px.QuantizeSlice(xq.Data(), xq.Data())
	wq := w.Clone()
	pw.QuantizeSlice(wq.Data(), wq.Data())
	refQ := tensor.MatMul(xq, wq).Apply(func(v float64) float64 { return pout.Value(v) })

	var maxErr float64
	for i := range out.Data() {
		if e := math.Abs(out.Data()[i] - refQ.Data()[i]); e > maxErr {
			maxErr = e
		}
	}

	fmt.Printf("\nGEMM %dx%dx%d on %dx%d array @ %d-bit\n", *m, *k, *o, *n, *n, *bits)
	fmt.Printf("cycles:        %d (%d tiles, utilization %.1f%%)\n", res.Stats.Cycles, res.Stats.Tiles, 100*res.Stats.Utilization)
	fmt.Printf("max |acc|:     %d (fits 32-bit: %v)\n", res.MaxAbsAcc, res.MaxAbsAcc < 1<<31)
	fmt.Printf("output MSE vs FP32:       %.4e\n", tensor.MSE(out, ref))
	fmt.Printf("max |err| vs fake-quant:  %.4e (one base Δ = %.4e)\n", maxErr, pout.BaseDelta())

	qua := hweval.Evaluate(hweval.DefaultConfig(hweval.QUADesign, *bits, *n))
	base := hweval.Evaluate(hweval.DefaultConfig(hweval.BaseQDesign, *bits, *n))
	secs := float64(res.Stats.Cycles) / (qua.Config.ClockMHz * 1e6)
	fmt.Printf("\nQUA  %dx%d @%d-bit: %.3f mm2, %.1f mW  (run: %.2f µs, %.3f µJ)\n",
		*n, *n, *bits, qua.AreaMM2, qua.PowerMW, secs*1e6, qua.PowerMW*secs*1e3)
	fmt.Printf("BaseQ reference:   %.3f mm2, %.1f mW\n", base.AreaMM2, base.PowerMW)
}

// runModel executes a complete ViT-Nano inference on the integer QUA
// datapath and reports end-to-end cycles, latency and energy for both
// array sizes of Table 4.
func runModel(n, bits int, seed uint64) {
	cfg := vit.ViTNano
	mdl := vit.New(cfg, seed)
	calib := data.CalibrationSet(cfg, 8, seed)
	runner, err := accel.NewModelRunner(mdl, calib, bits, accel.ArrayConfig{N: n, Bits: bits})
	if err != nil {
		log.Fatal(err)
	}
	img := data.Images(cfg, 1, seed^0x51)[0]
	logits, stats, err := runner.Run(img)
	if err != nil {
		log.Fatal(err)
	}
	ref := mdl.Forward(img, vit.ForwardOpts{})
	hw := hweval.Evaluate(hweval.DefaultConfig(hweval.QUADesign, bits, n))
	secs := float64(stats.GEMMCycles) / (hw.Config.ClockMHz * 1e6)
	fmt.Printf("%s on the integer QUA datapath (%dx%d array, %d-bit):\n", cfg.Name, n, n, bits)
	fmt.Printf("  GEMM cycles: %d (%d MACs)\n", stats.GEMMCycles, stats.MACs)
	fmt.Printf("  latency:     %.2f µs @ 500 MHz\n", secs*1e6)
	fmt.Printf("  energy:      %.3f µJ (%.1f mW accelerator)\n", hw.PowerMW*secs*1e3, hw.PowerMW)
	fmt.Printf("  top-1 match vs FP32: %v (argmax %d vs %d), logits cosine %.4f\n",
		logits.ArgMax() == ref.ArgMax(), logits.ArgMax(), ref.ArgMax(), tensor.CosineSimilarity(logits, ref))
}
