// Package directive is the fixture corpus for the directive
// meta-analyzer: suppression comments must use a known token and carry
// a reason.
package directive

//quq:bogus this token does not exist // want `unknown directive //quq:bogus`
var unknownToken = 1

// want+1 `directive //quq:float-ok needs a reason`
var missingReason = 2 //quq:float-ok

//quq:float-ok fixture: a well-formed directive is not flagged
var wellFormed = 3

// A plain comment mentioning quq: inside prose is not a directive.
var prose = 4
