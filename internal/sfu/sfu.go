// Package sfu implements the special function units of the QUA
// accelerator (§4.2): integer-only LayerNorm, Softmax and GELU kernels in
// the style of I-BERT/I-ViT (the paper's references [5, 6]), fed by a QUB
// decoder so the data flow never leaves the quantized domain.
//
// The paper streamlines its SFUs to "perform the same functions as the
// accelerator designed for uniform quantization in [5, 6]" after a QUB
// decode; this package provides those functions. All kernels operate on
// dyadic fixed-point integers (value = v·2⁻ᶠ with F fraction bits) using
// only additions, multiplications, shifts and comparisons — no floating
// point — and are verified against the float reference implementations in
// the package tests.
package sfu

import (
	"math"

	"quq/internal/check"
)

// F is the fixed-point fraction width used by the kernels: values are
// represented as v·2⁻ᶠ. 16 bits keeps int64 intermediates comfortably
// within range for transformer activations.
const F = 16

// One is the fixed-point representation of 1.0.
const One = int64(1) << F

// ToFixed converts a float to fixed point (round to nearest).
func ToFixed(x float64) int64 {
	return int64(math.RoundToEven(x * float64(One)))
}

// FromFixed converts fixed point back to float (for tests and boundary
// conversions only; the datapath stays integer).
func FromFixed(v int64) float64 {
	return float64(v) / float64(One)
}

// log2(e) ≈ 1.442695 in fixed point.
var log2e = ToFixed(math.Log2E)

// ln(2) ≈ 0.693147 in fixed point.
var ln2 = ToFixed(math.Ln2)

// mulFix multiplies two fixed-point values.
func mulFix(a, b int64) int64 {
	return (a * b) >> F
}

// Exp2Neg computes 2^x for x ≤ 0 in fixed point: the exponent is split
// into its integer part (a right shift) and fractional part r ∈ [0, 1),
// with 2^r approximated by the quadratic 1 + r·ln2 + (r·ln2)²/2 — a
// shift-and-multiply datapath. Inputs below the representable range
// return 0. Positive inputs are clamped to 0 (result 1).
func Exp2Neg(x int64) int64 {
	if x > 0 {
		x = 0
	}
	q := (-x) >> F // integer part of the magnitude
	if q >= 62 {
		return 0
	}
	r := x + int64(q)<<F // fractional remainder in (−1, 0]
	// 2^r = e^(r·ln2), with the exponential expanded to fourth order —
	// worst-case relative error ≈ 0.13% over r ∈ (−1, 0].
	t := mulFix(r, ln2)
	t2 := mulFix(t, t)
	poly := One + t + t2/2 + mulFix(t2, t)/6 + mulFix(t2, t2)/24
	if poly < 0 {
		poly = 0
	}
	return poly >> q
}

// Softmax computes an integer softmax over the fixed-point logits xs,
// writing fixed-point probabilities into out (which may alias xs). The
// max-subtraction, exponentials and normalization all run in integer
// arithmetic; the division is one integer divide per element, which
// hardware implements with the shared reciprocal unit.
func Softmax(out, xs []int64) {
	if len(out) != len(xs) {
		panic(check.Invariant("sfu: Softmax length mismatch"))
	}
	if len(xs) == 0 {
		return
	}
	maxV := xs[0]
	for _, v := range xs[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum int64
	for i, v := range xs {
		e := Exp2Neg(mulFix(v-maxV, log2e))
		out[i] = e
		sum += e
	}
	if sum == 0 {
		// Degenerate all-underflow row: put the mass on the maximum.
		for i, v := range xs {
			if v == maxV {
				out[i] = One
			} else {
				out[i] = 0
			}
		}
		return
	}
	for i := range out {
		out[i] = (out[i] << F) / sum
	}
}

// Sigmoid computes σ(x) in fixed point via the exponential identity
// σ(x) = 2^(x·log2 e) / (1 + 2^(x·log2 e)) for x ≤ 0 and symmetry for
// x > 0.
func Sigmoid(x int64) int64 {
	neg := x > 0
	if neg {
		x = -x
	}
	e := Exp2Neg(mulFix(x, log2e))
	s := (e << F) / (One + e)
	if neg {
		return One - s
	}
	return s
}

// sigmoidGain is 1.702 in fixed point: the sigmoid-approximation constant
// of GELU(x) ≈ x·σ(1.702x) (the I-ViT ShiftGELU formulation).
var sigmoidGain = ToFixed(1.702)

// GELU computes the sigmoid approximation of GELU in fixed point.
func GELU(x int64) int64 {
	return mulFix(x, Sigmoid(mulFix(sigmoidGain, x)))
}

// ISqrt returns floor(sqrt(v)) for a non-negative integer using Newton's
// method — the integer square root the LayerNorm unit needs.
func ISqrt(v int64) int64 {
	if v < 0 {
		panic(check.Invariant("sfu: ISqrt of negative value"))
	}
	if v < 2 {
		return v
	}
	x := int64(1) << ((bitsOf(v) + 1) / 2) // initial guess ≥ sqrt(v)
	for {
		y := (x + v/x) / 2
		if y >= x {
			return x
		}
		x = y
	}
}

func bitsOf(v int64) uint {
	n := uint(0)
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// LayerNorm normalizes one row of fixed-point values in place and applies
// the affine parameters (also fixed point): out = (x−μ)/σ·γ + β. The
// variance and square root run entirely in integer arithmetic.
func LayerNorm(out, xs, gamma, beta []int64) {
	n := int64(len(xs))
	if n == 0 {
		return
	}
	if len(out) != len(xs) || len(gamma) != len(xs) || len(beta) != len(xs) {
		panic(check.Invariant("sfu: LayerNorm length mismatch"))
	}
	var sum int64
	for _, v := range xs {
		sum += v
	}
	mean := sum / n
	var ss int64
	for _, v := range xs {
		d := v - mean
		// Drop F fraction bits before squaring to keep int64 headroom;
		// reintroduced via the sqrt's scale below.
		ss += (d * d) >> F
	}
	variance := ss / n // fixed point with F fraction bits
	// σ in fixed point: sqrt(var·2ᶠ) since sqrt halves the exponent.
	sigma := ISqrt(variance << F)
	if sigma == 0 {
		sigma = 1
	}
	for i, v := range xs {
		norm := ((v - mean) << F) / sigma
		out[i] = mulFix(norm, gamma[i]) + beta[i]
	}
}
