package vit

import (
	"fmt"

	"quq/internal/tensor"
)

// SiteKind classifies a quantization point according to the paper's
// Figure 1 colour coding.
type SiteKind int

const (
	// KindGEMMIn marks activations that feed a GEMM (the figure's green
	// points): these are quantized in both partial and full quantization.
	KindGEMMIn SiteKind = iota
	// KindActivation marks the remaining activations (the figure's red
	// points: residual-connection, LayerNorm, Softmax and GELU inputs):
	// quantized only under full quantization.
	KindActivation
	// KindWeight marks GEMM weight tensors, quantized in both regimes.
	KindWeight
)

func (k SiteKind) String() string {
	switch k {
	case KindGEMMIn:
		return "gemm-in"
	case KindActivation:
		return "activation"
	case KindWeight:
		return "weight"
	}
	return fmt.Sprintf("SiteKind(%d)", int(k))
}

// Site names one quantization point in a model. Block is the global block
// index (-1 for stem and head sites); Name is stable across runs and
// identifies the point within the block.
type Site struct {
	Block int
	Name  string
	Kind  SiteKind
}

// Key returns a stable map key for the site.
func (s Site) Key() string {
	return fmt.Sprintf("b%02d.%s", s.Block, s.Name)
}

func (s Site) String() string { return s.Key() + "[" + s.Kind.String() + "]" }

// Tap observes — and may replace — the tensor flowing through a site.
// Returning x unchanged makes the tap a pure observer (calibration);
// returning a fake-quantized copy simulates quantized inference. A nil
// Tap is the identity.
type Tap func(site Site, x *tensor.Tensor) *tensor.Tensor

// apply routes a tensor through the tap, handling the nil case.
func (t Tap) apply(site Site, x *tensor.Tensor) *tensor.Tensor {
	if t == nil {
		return x
	}
	if y := t(site, x); y != nil {
		return y
	}
	return x
}

// AttnSink receives each block's attention probability tensor
// ([heads*T, T] rows are softmax distributions) during a forward pass;
// the Figure 7 experiment uses it to extract attention maps.
type AttnSink func(block int, attn *tensor.Tensor)

// GEMMEngine substitutes the computation of weight GEMMs during a
// forward pass. Linear is offered every weight-layer application (the
// same sites ForEachWeight enumerates, identified by their KindWeight
// site): if the engine computes xW+b into dst and returns true, the
// float path is skipped; returning false falls back to the layer's
// ApplyInto. dst arrives with the correct shape [x rows, l.Out()] and
// unspecified contents. The PTQ integer path implements this to run
// weight GEMMs on resident integer operands without rehydrating weights
// to float64.
type GEMMEngine interface {
	Linear(site Site, l *Linear, dst, x *tensor.Tensor) bool
}

// ForwardOpts bundles the optional instrumentation of a forward pass.
type ForwardOpts struct {
	Tap  Tap
	Attn AttnSink
	// Engine, when non-nil, substitutes weight-GEMM computation; see
	// GEMMEngine.
	Engine GEMMEngine
}

// applyLinear routes one weight-layer application through the engine
// seam, falling back to the float ApplyInto when no engine is installed
// or the engine declines the site.
func applyLinear(opts ForwardOpts, site Site, l *Linear, dst, x *tensor.Tensor) *tensor.Tensor {
	if opts.Engine != nil && opts.Engine.Linear(site, l, dst, x) {
		return dst
	}
	return l.ApplyInto(dst, x)
}
