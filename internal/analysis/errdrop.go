package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errdropPackages are the stdlib packages whose errors carry io state:
// dropping them can lose data (short writes, failed closes on write
// paths) or mask corrupt input (failed reads/decodes).
var errdropPackages = map[string]bool{
	"os":              true,
	"io":              true,
	"bufio":           true,
	"encoding/binary": true,
	"encoding/csv":    true,
	"encoding/json":   true,
	"encoding/gob":    true,
	"compress/gzip":   true,
	"compress/flate":  true,
}

// ErrDrop flags discarded error returns — blank assignments (`x, _ :=`)
// and bare call statements — on io, encode and decode paths: calls into
// the io-bearing stdlib packages above and calls into this module's own
// packages (whose error returns all signal unrepresentable encodings or
// corrupt artifacts, never ignorable conditions). Writes to
// strings.Builder and bytes.Buffer are exempt: their error results are
// documented to always be nil. Intentional drops carry //quq:errdrop-ok
// with a reason.
var ErrDrop = &Analyzer{
	Name:      "errdrop",
	Doc:       "io/encode/decode paths must not discard error returns",
	Directive: "errdrop-ok",
	Run:       runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkBareCall(pass, n.X)
			case *ast.DeferStmt:
				checkBareCall(pass, n.Call)
			case *ast.GoStmt:
				checkBareCall(pass, n.Call)
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
}

// checkBareCall reports an expression-statement call whose error result
// vanishes.
func checkBareCall(pass *Pass, e ast.Expr) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := trackedCallee(pass, call)
	if fn == nil {
		return
	}
	if errorResultIndex(fn) < 0 {
		return
	}
	pass.Reportf(call.Pos(), "error return of %s discarded; handle it or annotate //quq:errdrop-ok with the reason", calleeLabel(fn))
}

// checkBlankAssign reports `_`-discarded error results of a call.
func checkBlankAssign(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := trackedCallee(pass, call)
	if fn == nil {
		return
	}
	results := fn.Type().(*types.Signature).Results()
	for i, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || i >= results.Len() {
			continue
		}
		if isErrorType(results.At(i).Type()) {
			pass.Reportf(id.Pos(), "error return of %s assigned to _; handle it or annotate //quq:errdrop-ok with the reason", calleeLabel(fn))
		}
	}
}

// trackedCallee resolves the callee and applies the scope filter:
// io-bearing stdlib packages and module-internal functions, minus the
// infallible in-memory writers.
func trackedCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	module := path == "quq" || strings.HasPrefix(path, "quq/")
	if !module && !errdropPackages[path] {
		return nil
	}
	// strings.Builder and bytes.Buffer writes always return a nil error.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		switch rt.String() {
		case "strings.Builder", "bytes.Buffer":
			return nil
		}
	}
	return fn
}

// errorResultIndex returns the index of the first error result of fn,
// or -1.
func errorResultIndex(fn *types.Func) int {
	results := fn.Type().(*types.Signature).Results()
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			return i
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	return t == types.Universe.Lookup("error").Type() || t.String() == "error"
}

// calleeLabel renders pkg.Func or (recv).Method for diagnostics.
func calleeLabel(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
