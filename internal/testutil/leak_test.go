package testutil

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeTB captures the leak checker's verdict without failing the real
// test.
type fakeTB struct {
	failed bool
	msg    string
}

func (f *fakeTB) Helper() {}

func (f *fakeTB) Errorf(format string, args ...any) {
	f.failed = true
	f.msg = fmt.Sprintf(format, args...)
}

func TestVerifyNoLeaksPassesOnCleanShutdown(t *testing.T) {
	fake := &fakeTB{}
	check := VerifyNoLeaks(fake)
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(5 * time.Millisecond)
	}()
	<-done
	check()
	if fake.failed {
		t.Fatalf("clean shutdown reported as a leak:\n%s", fake.msg)
	}
}

func TestVerifyNoLeaksCatchesALeak(t *testing.T) {
	// The deliberate leak must not outlive this test: the outer checker
	// guards the guard.
	defer VerifyNoLeaks(t)()

	old := settleTimeout
	settleTimeout = 50 * time.Millisecond
	defer func() { settleTimeout = old }()

	fake := &fakeTB{}
	check := VerifyNoLeaks(fake)
	stop := make(chan struct{})
	go func() {
		<-stop
	}()
	check()
	close(stop)
	if !fake.failed {
		t.Fatal("a parked goroutine created after the snapshot was not reported")
	}
	if !strings.Contains(fake.msg, "goroutine(s) leaked") {
		t.Fatalf("unexpected leak report: %s", fake.msg)
	}
}

func TestSnapshotCancelsIdenticalStacks(t *testing.T) {
	// Two goroutines parked at the same site must count as two, so one
	// surviving twin is still a leak.
	stop := make(chan struct{})
	park := func() { <-stop }
	go park()
	go park()
	// Let both reach the park before snapshotting.
	time.Sleep(10 * time.Millisecond)
	before := snapshot()
	total := 0
	for _, n := range before {
		total += n
	}
	if total < 2 {
		t.Fatalf("snapshot saw %d goroutines, expected at least the two parked twins", total)
	}
	close(stop)
}
