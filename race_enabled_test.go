//go:build race

package quq_test

// raceEnabled reports that this binary was built with -race; see
// norace_enabled_test.go for the default.
const raceEnabled = true
