// Package baselines reimplements the quantization schemes the QUQ paper
// compares against, each plugged into the shared PTQ pipeline so that the
// only difference between table rows is the quantization mechanism:
//
//   - BaseQ: per-tensor symmetric uniform quantization with the same
//     clipping grid search as QUQ (the paper's ablation control);
//   - PTQ4ViT: twin uniform quantization for post-Softmax and post-GELU
//     activations, uniform elsewhere (Yuan et al., ECCV 2022);
//   - APQ-ViT: asymmetric (affine) uniform quantization with error-aware
//     clipping search — the block-wise Hessian calibration of Ding et al.
//     realized as a tensor-level proxy (DESIGN.md);
//   - FQ-ViT: row-wise weight quantization, log2 post-Softmax
//     quantization and power-of-two-factor (PTF) per-channel scaling for
//     LayerNorm inputs (Lin et al.);
//   - BiScaled-FxP: dual scale factors with an outlier index table
//     (Jain et al., DAC 2019).
package baselines

import (
	"strings"

	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// BaseQ is per-tensor symmetric uniform quantization with clipping
// search: the paper's "substitute QUQ with uniform quantization while
// maintaining the rest of the PTQ process unchanged".
type BaseQ struct{}

// Name implements ptq.Method.
func (BaseQ) Name() string { return "BaseQ" }

// CalibrateActivation implements ptq.Method.
func (BaseQ) CalibrateActivation(stats *ptq.SiteStats, bits int) ptq.TensorQuantizer {
	return ptq.UniformQuantizer{Delta: ptq.SearchUniformDelta(stats.Samples, bits, ptq.DefaultAlphaGrid), Bits: bits}
}

// QuantizeWeight implements ptq.Method.
func (BaseQ) QuantizeWeight(_ vit.Site, w *tensor.Tensor, bits int) {
	q := ptq.UniformQuantizer{Delta: ptq.SearchUniformDelta(w.Data(), bits, ptq.DefaultAlphaGrid), Bits: bits}
	copy(w.Data(), q.Apply(w).Data())
}

// isPostSoftmax reports whether the site carries attention probabilities.
func isPostSoftmax(s vit.Site) bool { return strings.HasSuffix(s.Name, "softmax_out") }

// isPostGELU reports whether the site carries GELU outputs.
func isPostGELU(s vit.Site) bool { return strings.HasSuffix(s.Name, "gelu_out") }

// isResidualStream reports whether the site carries the residual stream
// (the LayerNorm inputs FQ-ViT's PTF targets).
func isResidualStream(s vit.Site) bool {
	switch {
	case strings.HasSuffix(s.Name, "resid1.out"),
		strings.HasSuffix(s.Name, "resid2.out"),
		strings.HasSuffix(s.Name, "embed.out"),
		strings.HasSuffix(s.Name, "proj_out"),
		strings.HasSuffix(s.Name, "fc2_out"),
		strings.HasSuffix(s.Name, "merge.out"):
		return true
	}
	return false
}
