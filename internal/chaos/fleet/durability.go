package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"quq/internal/chaos"
	"quq/internal/data"
	"quq/internal/serve"
	"quq/internal/snapstore"
	"quq/internal/vit"
)

// directClient talks straight to individual backends across their
// crash-restart boundary. Keep-alives are off: a pooled connection to
// a backend that died and came back on the same port surfaces as a
// broken pipe mid-request, which would make probe outcomes depend on
// connection-pool state instead of on the script.
var directClient = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

// getModels fetches one backend's /models page directly (not through
// the front) and indexes its entries by key — how the durability
// scenarios observe a single replica's resident state and digests.
func getModels(ctx context.Context, base string) (map[string]serve.EntryInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/models", nil)
	if err != nil {
		return nil, err
	}
	resp, err := directClient.Do(req)
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/models: status %d", base, resp.StatusCode)
	}
	var page struct {
		Entries []serve.EntryInfo `json:"entries"`
	}
	if err := json.Unmarshal(raw, &page); err != nil {
		return nil, err
	}
	out := make(map[string]serve.EntryInfo, len(page.Entries))
	for _, e := range page.Entries {
		out[e.Key] = e
	}
	return out, nil
}

// postDirect POSTs a JSON body straight to one backend through the
// non-pooling client and reports only the status code.
func postDirect(ctx context.Context, url string, body any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := directClient.Do(req)
	if err != nil {
		return 0, err
	}
	//quq:errdrop-ok best-effort drain before close; the status code is the whole verdict
	_, _ = io.Copy(io.Discard, resp.Body)
	//quq:errdrop-ok response deliberately reduced to its status code
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

// getStatus performs one direct GET and reports only the status code.
func getStatus(ctx context.Context, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := directClient.Do(req)
	if err != nil {
		return 0, err
	}
	//quq:errdrop-ok best-effort drain for connection reuse; the status code is the whole verdict
	_, _ = io.Copy(io.Discard, resp.Body)
	//quq:errdrop-ok response deliberately reduced to its status code
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

// waitReady polls one backend's /models through the fake clock until
// key is resident and ready, returning its digest.
func (f *testFleet) waitReady(ctx context.Context, b *backendShard, key string) (string, error) {
	for i := 0; i < 400; i++ {
		entries, err := getModels(ctx, "http://"+b.host)
		if err == nil {
			if e, ok := entries[key]; ok && e.Ready {
				return e.Digest, nil
			}
		}
		if err := f.clock.Sleep(ctx, 5*time.Millisecond); err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("key %s never became ready on %s", key, b.host)
}

// shardFor maps a ring owner address back to the fleet's backendShard.
func (f *testFleet) shardFor(addr string) (*backendShard, int, error) {
	host := hostOf(addr)
	for i, b := range f.backends {
		if b.host == host {
			return b, i, nil
		}
	}
	return nil, 0, fmt.Errorf("no fleet backend with host %s", host)
}

// scenarioWarmRestart is the crash-restart fault: calibrate a key,
// kill its owning backend mid-fleet, restart it pointed at the same
// snapshot directory, and check warm-restart-zero-recalibration — the
// restored process answers every read warm (zero new calibration
// builds, digest unchanged) and, while the snapshot load is still in
// flight, classify returns a retryable 503 rather than a wrong answer
// or an rebuild. A SnapshotLoadHook gate holds the warm load open so
// the 503 window is observed deterministically, not raced.
func scenarioWarmRestart(ctx context.Context, seed uint64, opts Options, rep *chaos.Report) error {
	root, err := os.MkdirTemp("", "quq-chaos-warm-")
	if err != nil {
		return err
	}
	defer func() {
		//quq:errdrop-ok best-effort temp-dir cleanup after the verdict is recorded
		_ = os.RemoveAll(root)
	}()

	cfg, snapshot := buildCounter(seed)
	cfg.Registry.SnapshotDir = root
	var restored atomic.Int32
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()
	cfg.Registry.SnapshotLoadHook = func(n int) {
		// First boots see an empty store (n == 0) and pass straight
		// through; the restart (n > 0) parks here until the scenario has
		// observed the warming window.
		if n > 0 {
			restored.Store(int32(n))
			<-gate
		}
	}

	f, err := boot(ctx, 3, 1, cfg, &chaos.Script{Name: "warm-restart", Seed: seed}, opts)
	if err != nil {
		return err
	}
	defer f.close()

	sel := selection{Model: "ViT-Nano", Method: "BaseQ", Bits: 6}
	key, err := sel.key()
	if err != nil {
		return err
	}
	if r, err := post(ctx, f.base+"/v1/quantize", sel); err != nil || r.status != http.StatusOK {
		return fmt.Errorf("warm quantize: %v (status %d)", err, r.status)
	}
	builds0 := snapshot()[key]

	owners := f.front.Ring().OwnerN(key, 1)
	if len(owners) != 1 {
		return fmt.Errorf("OwnerN returned %d owners, want 1", len(owners))
	}
	victim, _, err := f.shardFor(owners[0].Addr())
	if err != nil {
		return err
	}
	digestBefore, err := f.waitReady(ctx, victim, key)
	if err != nil {
		return err
	}

	f.crashBackend(victim)
	if err := f.restartBackend(ctx, victim); err != nil {
		return err
	}

	// The warm load is parked on the gate, so this classify lands inside
	// the warming window by construction: it must be a 503, never a 404
	// (which would push the client to recalibrate elsewhere) and never a
	// 200 from a half-loaded registry.
	img := data.Images(vit.ViTNano, 1, seed)[0].Data()
	status, err := postDirect(ctx, "http://"+victim.host+"/v1/classify", classifyBody(sel, img))
	if err != nil {
		return fmt.Errorf("warming probe: %w", err)
	}
	warming503 := status == http.StatusServiceUnavailable
	release()

	digestAfter, err := f.waitReady(ctx, victim, key)
	if err != nil {
		return err
	}
	const reads = 6
	readsOK := 0
	for i := 0; i < reads; i++ {
		r, err := post(ctx, f.base+"/v1/classify", classifyBody(sel, img))
		if err != nil {
			return fmt.Errorf("warm read %d: %w", i, err)
		}
		if r.status == http.StatusOK {
			readsOK++
		}
	}
	digestsStable := digestBefore != "" && digestBefore == digestAfter
	rep.CheckWarmRestart(int(restored.Load()), reads, readsOK, snapshot()[key]-builds0, warming503, digestsStable)
	return nil
}

// scenarioCorruptionRepair is the snapshot-corruption fault at R=2:
// flip bits in one replica's on-disk snapshot, restart that replica,
// and check corruption-quarantined (the damaged file is quarantined at
// load — the backend stays healthy and never serves the corrupt
// payload) followed by antientropy-converges (one sweep re-pushes the
// surviving replica's snapshot to the repaired owner, restoring R
// identical copies with zero new calibration builds).
func scenarioCorruptionRepair(ctx context.Context, seed uint64, opts Options, rep *chaos.Report) error {
	root, err := os.MkdirTemp("", "quq-chaos-corrupt-")
	if err != nil {
		return err
	}
	defer func() {
		//quq:errdrop-ok best-effort temp-dir cleanup after the verdict is recorded
		_ = os.RemoveAll(root)
	}()

	cfg, snapshot := buildCounter(seed)
	cfg.Registry.SnapshotDir = root
	f, err := boot(ctx, 3, 2, cfg, &chaos.Script{Name: "corruption-repair", Seed: seed}, opts)
	if err != nil {
		return err
	}
	defer f.close()

	sel := selection{Model: "ViT-Nano", Method: "BaseQ", Bits: 5}
	key, err := sel.key()
	if err != nil {
		return err
	}
	if r, err := post(ctx, f.base+"/v1/quantize", sel); err != nil || r.status != http.StatusOK {
		return fmt.Errorf("replicated warm: %v (status %d)", err, r.status)
	}
	sumBuilds := func() int {
		total := 0
		for _, n := range snapshot() {
			total += n
		}
		return total
	}
	builds0 := sumBuilds()

	owners := f.front.Ring().OwnerN(key, 2)
	if len(owners) != 2 {
		return fmt.Errorf("OwnerN returned %d owners, want 2", len(owners))
	}
	victim, victimIdx, err := f.shardFor(owners[0].Addr())
	if err != nil {
		return err
	}
	survivor, _, err := f.shardFor(owners[1].Addr())
	if err != nil {
		return err
	}
	if _, err := f.waitReady(ctx, victim, key); err != nil {
		return err
	}
	healthyDigest, err := f.waitReady(ctx, survivor, key)
	if err != nil {
		return err
	}

	f.crashBackend(victim)
	victimDir := filepath.Join(root, fmt.Sprintf("shard-%d", victimIdx))
	if err := chaos.CorruptFile(snapstore.PathFor(victimDir, key), seed, 3); err != nil {
		return err
	}
	if err := f.restartBackend(ctx, victim); err != nil {
		return err
	}

	// Wait out the warm load: GET /v1/snapshot answers 503 while loading,
	// then 404 once the corrupt file has been quarantined instead of
	// installed. A 200 here would mean the registry served a payload
	// whose digest check should have failed.
	snapURL := "http://" + victim.host + "/v1/snapshot?key=" + url.QueryEscape(key)
	status := 0
	for i := 0; i < 400; i++ {
		status, err = getStatus(ctx, snapURL)
		if err == nil && status != http.StatusServiceUnavailable {
			break
		}
		if serr := f.clock.Sleep(ctx, 5*time.Millisecond); serr != nil {
			return serr
		}
	}
	servedCorrupt := 0
	if status == http.StatusOK {
		servedCorrupt = 1
	}
	quarantined, err := filepath.Glob(filepath.Join(victimDir, "*.quarantined"))
	if err != nil {
		return err
	}
	hstatus, err := getStatus(ctx, "http://"+victim.host+"/healthz")
	if err != nil {
		return err
	}
	rep.CheckCorruptionQuarantined(len(quarantined), hstatus == http.StatusOK, servedCorrupt)

	stats := f.front.SweepNow(ctx)
	repairedDigest, err := f.waitReady(ctx, victim, key)
	if err != nil {
		return err
	}
	second := f.front.SweepNow(ctx)
	converged := repairedDigest != "" && repairedDigest == healthyDigest && second.Mismatches == 0
	rep.CheckAntiEntropyConverges(stats.Mismatches, stats.Repairs, stats.Failures, sumBuilds()-builds0, converged)
	return nil
}
