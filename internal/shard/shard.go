// Package shard is quq-shard's sharding layer: a consistent-hash HTTP
// front-end that partitions the quantized-model registry keyspace across
// a fleet of quq-serve backends, so large-zoo calibration cost — the
// once-per-key price QUQ's PRA calibration and grid-search refinement
// pay at load time — is spent on exactly one shard per key instead of
// once per process.
//
// The pieces:
//
//   - Ring (ring.go): a consistent-hash ring with virtual nodes and
//     bounded-load overflow. Keys are canonical serve.Key strings
//     (serve.CanonicalKey runs before hashing, so "Quq" and "quq" land
//     on one shard); hashing is FNV-1a, so two processes always agree
//     on ownership, and adding or removing one backend only remaps the
//     arcs it owns (~1/N of the keyspace);
//   - Prober (prober.go): periodic /healthz probes with
//     consecutive-failure ejection and re-admission on recovery;
//   - Front (proxy.go): the HTTP surface — it canonicalizes the key in
//     a classify/quantize body, picks the owning backend, proxies with
//     retry-with-backoff on connection failures (never on HTTP errors:
//     a 429 is propagated backpressure, retrying it would amplify
//     overload), and fails over to ring successors when a backend dies;
//   - aggregation (aggregator.go): /metrics fans out to every healthy
//     backend's Prometheus-style exposition and merges them — via
//     metrics.ParseText/Merge — into one deterministic cluster view.
package shard

import (
	"context"
	"net/http"
	"time"

	"quq/internal/chaos"
	"quq/internal/serve/metrics"
)

// Options tunes the sharding front-end.
type Options struct {
	// BaseContext roots the front-end's background work (the prober's
	// health-check round trips). Cancelling it aborts in-flight probes;
	// nil means the front-end runs until Close with no external deadline.
	BaseContext context.Context
	// Backends lists the quq-serve base addresses ("host:port" or full
	// http:// URLs) forming the initial ring.
	Backends []string
	// VNodes is the number of virtual nodes per backend (default 128);
	// more vnodes means smoother key distribution and smaller moved arcs.
	VNodes int
	// MaxLoadFactor bounds per-backend load: a backend whose in-flight
	// request count exceeds MaxLoadFactor times the fleet average spills
	// its keys to the next ring successor (default 1.25; <= 0 disables
	// bounding).
	MaxLoadFactor float64
	// Replicas is the replication factor R: each registry key's
	// calibration lives on its first R healthy ring successors. Warming
	// requests (/v1/quantize) fan out to all R owners; reads are served
	// by the first reachable replica. Default 1 (no replication).
	Replicas int
	// HandoffMaxKeys bounds how many registry keys one admin drain
	// re-homes before the member leaves (default 64). Entries beyond
	// the cap rely on replication or on-demand recalibration.
	HandoffMaxKeys int
	// ProbeInterval is the /healthz probe period (default 2s; negative
	// disables the background prober — ProbeNow still works).
	ProbeInterval time.Duration
	// AntiEntropyInterval is the period of the background anti-entropy
	// sweep that compares snapshot digests across each key's R replica
	// owners and repairs divergent or missing copies by re-pushing the
	// healthy majority's snapshot (0 or negative disables the loop —
	// SweepNow still works; it is also a no-op unless Replicas >= 2).
	// The wait goes through Clock, so chaos replays drive sweeps from a
	// fake clock.
	AntiEntropyInterval time.Duration
	// ProbeTimeout bounds one probe (default 1s).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive probe failures before ejection
	// (default 2).
	FailAfter int
	// OkAfter is the consecutive healthy probes an ejected backend must
	// pass before re-admission (default 2). The asymmetric threshold is
	// flap hysteresis: a backend oscillating between alive and dead on
	// successive probe rounds stays ejected instead of churning the ring
	// (and re-moving its arcs) every cycle.
	OkAfter int
	// Retries is how many times a proxied request is retried against the
	// same backend on connection failure before failing over (default 2).
	// HTTP-level responses, including 429 backpressure, are never
	// retried.
	Retries int
	// RetryBackoff is the first retry delay, doubled per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// RequestTimeout bounds one proxied request end-to-end, including a
	// first-request calibration on the backend (default 120s).
	RequestTimeout time.Duration
	// MaxBodyBytes caps the request body (default 8 MiB).
	MaxBodyBytes int64
	// Transport overrides the outbound HTTP transport (tests and the
	// chaos fault-injection layer).
	Transport http.RoundTripper
	// Seed seeds the retry-backoff jitter (default 1). All randomness in
	// the front-end flows from this one seed through internal/rng, so two
	// fronts given the same seed and the same request sequence produce
	// identical retry schedules — which is what lets the chaos harness
	// replay a fault script byte-for-byte.
	Seed uint64
	// Clock is the time source for retry-backoff sleeps (default the
	// real clock). The chaos harness swaps in a fake so fault replays
	// neither wait out real backoffs nor depend on wall time.
	Clock chaos.Clock
}

func (o *Options) defaults() {
	if o.BaseContext == nil {
		// The one place the front-end mints a root: an embedder that
		// declines to supply a base context gets background work scoped
		// only by Close, matching the pre-BaseContext behavior.
		//quq:ctx-ok explicit opt-out default; embedders thread a real context via Options.BaseContext
		o.BaseContext = context.Background()
	}
	if o.VNodes <= 0 {
		o.VNodes = 128
	}
	if o.MaxLoadFactor == 0 {
		o.MaxLoadFactor = 1.25
	}
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.HandoffMaxKeys <= 0 {
		o.HandoffMaxKeys = 64
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 2
	}
	if o.OkAfter <= 0 {
		o.OkAfter = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 120 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		o.Clock = chaos.Real
	}
}

// Metrics bundles the front-end's own instruments; /metrics merges this
// set with every backend's exposition.
type Metrics struct {
	Registry *metrics.Registry

	Requests     *metrics.Counter // requests accepted by any endpoint
	Failures     *metrics.Counter // responses with a 5xx status
	Backpressure *metrics.Counter // backend 429s propagated to clients
	Retries      *metrics.Counter // same-backend retries after connection failure
	Failovers    *metrics.Counter // requests re-routed to a ring successor
	Ejections    *metrics.Counter // backends marked unhealthy
	Readmissions *metrics.Counter // ejected backends readmitted by a probe
	ScrapeErrors *metrics.Counter // backend /metrics scrapes that failed
	Joins        *metrics.Counter // members admitted through /admin/join
	Leaves       *metrics.Counter // members removed (drain or leave)
	Handoffs     *metrics.Counter // registry keys re-homed by drains

	// Anti-entropy (antientropy.go).
	DigestMismatch *metrics.Counter // replica owners whose snapshot digest diverged from the authority
	Repairs        *metrics.Counter // divergent owners repaired by re-pushing the authority snapshot

	Healthy      *metrics.Gauge     // healthy backends on the ring
	Stale        *metrics.Gauge     // healthy backends missing from the last fleet view
	RingBackends *metrics.Gauge     // ring members (healthy or not)
	RingEpoch    *metrics.Gauge     // membership epoch (monotonic per topology change)
	Inflight     *metrics.GaugeVec  // per-backend in-flight proxied requests
	Latency      *metrics.Histogram // front-end request wall time, seconds
}

// NewShardMetrics builds the front-end instrument set on a fresh
// registry.
func NewShardMetrics() *Metrics {
	r := metrics.NewRegistry()
	return &Metrics{
		Registry: r,

		Requests:     r.NewCounter("quq_shard_requests_total", "HTTP requests accepted by the front-end"),
		Failures:     r.NewCounter("quq_shard_failures_total", "front-end responses with status >= 500"),
		Backpressure: r.NewCounter("quq_shard_backpressure_total", "backend 429 responses propagated to clients"),
		Retries:      r.NewCounter("quq_shard_retries_total", "same-backend retries after connection failure"),
		Failovers:    r.NewCounter("quq_shard_failovers_total", "requests re-routed to a ring successor"),
		Ejections:    r.NewCounter("quq_shard_ejections_total", "backends marked unhealthy"),
		Readmissions: r.NewCounter("quq_shard_readmissions_total", "ejected backends readmitted after a healthy probe"),
		ScrapeErrors: r.NewCounter("quq_shard_scrape_errors_total", "backend /metrics scrapes that failed"),
		Joins:        r.NewCounter("quq_shard_joins_total", "backends admitted to the ring through membership joins"),
		Leaves:       r.NewCounter("quq_shard_leaves_total", "backends removed from the ring (drain or leave)"),
		Handoffs:     r.NewCounter("quq_shard_handoff_keys_total", "registry keys re-homed onto new owners by drains"),

		DigestMismatch: r.NewCounter("quq_shard_digest_mismatch_total", "replica owners whose snapshot digest diverged from the key's authority digest"),
		Repairs:        r.NewCounter("quq_shard_antientropy_repairs_total", "divergent replica owners repaired by re-pushing the authority snapshot"),

		Healthy:      r.NewGauge("quq_shard_healthy_backends", "healthy backends on the ring"),
		Stale:        r.NewGauge("quq_shard_stale_shards", "healthy backends whose contribution to the last merged /metrics view is stale (scrape failed)"),
		RingBackends: r.NewGauge("quq_shard_ring_backends", "backends on the ring, healthy or not"),
		RingEpoch:    r.NewGauge("quq_shard_ring_epoch", "membership epoch; increments on every join, leave or drain"),
		Inflight:     r.NewGaugeVec("quq_shard_backend_inflight", "in-flight proxied requests per backend", "backend"),
		Latency:      r.NewHistogram("quq_shard_request_seconds", "front-end request latency in seconds", metrics.LatencyBuckets()),
	}
}
