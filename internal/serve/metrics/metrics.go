// Package metrics provides the stdlib-only instrumentation primitives
// behind quq-serve's /metrics endpoint: atomic counters and gauges, a
// fixed-bucket histogram with quantile estimation, and a registry that
// renders every registered metric in a deterministic, Prometheus-style
// text exposition.
//
// The package deliberately avoids external client libraries (the build
// is offline); the exposition format is close enough to the Prometheus
// text format for standard scrapers and humans alike. All metric types
// are safe for concurrent use.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"quq/internal/check"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) error {
	if err := writeHelp(w, c.name, c.help); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
	return err
}

// Gauge is an instantaneous value (queue depth, in-flight requests).
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer) error {
	if err := writeHelp(w, g.name, g.help); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
	return err
}

// GaugeVec is a family of gauges distinguished by one label — the
// per-backend view of a fleet quantity (in-flight requests per shard).
// Cardinality is bounded by construction: values are keyed by cluster
// membership, which join/leave/drain mutate explicitly, and Delete
// retires a member's series when it leaves. All methods are safe for
// concurrent use.
type GaugeVec struct {
	name, help, label string

	mu   sync.Mutex
	vals map[string]int64
}

// Set replaces the gauge for one label value, minting the series on
// first use.
func (v *GaugeVec) Set(value string, n int64) {
	v.mu.Lock()
	v.vals[value] = n
	v.mu.Unlock()
}

// Delete retires one label value's series (a member left the fleet).
func (v *GaugeVec) Delete(value string) {
	v.mu.Lock()
	delete(v.vals, value)
	v.mu.Unlock()
}

// Value returns the gauge for one label value.
func (v *GaugeVec) Value(value string) (int64, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.vals[value]
	return n, ok
}

// Len returns the number of live series.
func (v *GaugeVec) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.vals)
}

func (v *GaugeVec) write(w io.Writer) error {
	if err := writeHelp(w, v.name, v.help); err != nil {
		return err
	}
	v.mu.Lock()
	values := make([]string, 0, len(v.vals))
	for val := range v.vals {
		values = append(values, val)
	}
	sort.Strings(values)
	lines := make([]int64, len(values))
	for i, val := range values {
		lines[i] = v.vals[val]
	}
	v.mu.Unlock()
	for i, val := range values {
		//quq:label-ok label values are cluster member addresses, bounded by explicit join/leave membership and retired on Delete
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, val, lines[i]); err != nil {
			return err
		}
	}
	return nil
}

// Histogram counts observations into fixed buckets and tracks their sum,
// supporting approximate quantiles by linear interpolation inside the
// containing bucket.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; the last bucket is overflow
	sum    float64
	n      uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket. Observations beyond the last bound are
// attributed to the last bound. An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	return bucketQuantile(h.bounds, h.counts, h.n, q)
}

// bucketQuantile estimates the q-quantile from per-bucket counts (len
// bounds+1, last bucket overflow) by linear interpolation inside the
// containing bucket. It is shared by live Histograms and by merged
// Expositions so both report identical quantile semantics.
func bucketQuantile(bounds []float64, counts []uint64, n uint64, q float64) float64 {
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum float64
	for i, c := range counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			if i >= len(bounds) {
				// Overflow bucket: no finite upper bound to interpolate
				// toward; report the last bound as a floor.
				return bounds[len(bounds)-1]
			}
			hi := bounds[i]
			frac := (rank - cum) / float64(c)
			if math.IsNaN(frac) || frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return bounds[len(bounds)-1]
}

func (h *Histogram) write(w io.Writer) error {
	if err := writeHelp(w, h.name, h.help); err != nil {
		return err
	}
	h.mu.Lock()
	n := h.n
	sum := h.sum
	quantiles := [3]float64{h.quantileLocked(0.5), h.quantileLocked(0.9), h.quantileLocked(0.99)}
	var cum uint64
	type bucketLine struct {
		bound string
		cum   uint64
	}
	lines := make([]bucketLine, 0, len(h.bounds)+1)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		lines = append(lines, bucketLine{fmt.Sprintf("%g", bound), cum})
	}
	cum += h.counts[len(h.bounds)]
	lines = append(lines, bucketLine{"+Inf", cum})
	h.mu.Unlock()

	for _, l := range lines {
		//quq:label-ok le values are the histogram's bucket bounds, fixed at construction — bounded cardinality
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, l.bound, l.cum); err != nil {
			return err
		}
	}
	for i, q := range []string{"0.5", "0.9", "0.99"} {
		//quq:label-ok quantile values come from the fixed three-element list above — bounded cardinality
		if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", h.name, q, quantiles[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", h.name, sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.name, n)
	return err
}

func writeHelp(w io.Writer, name, help string) error {
	if help == "" {
		return nil
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	return err
}

// LatencyBuckets is a general-purpose exponential bucket layout for
// request latencies in seconds (10 µs … 10 s).
func LatencyBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// SizeBuckets is a power-of-two layout for batch sizes and counts.
func SizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128}
}

// FractionBuckets is an eighths layout for ratios in (0, 1], such as
// batch occupancy (images / max-batch).
func FractionBuckets() []float64 {
	return []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1}
}

type renderable interface {
	write(w io.Writer) error
}

// Registry holds named metrics and renders them in sorted-name order, so
// two scrapes of an idle server are byte-identical.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]renderable
	ordered []string // sorted names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]renderable)}
}

// register panics on duplicate names: metric registration happens at
// server construction, so a collision is a programmer error.
func (r *Registry) register(name string, m renderable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(check.Invariantf("metrics: duplicate metric %q", name))
	}
	r.byName[name] = m
	i := sort.SearchStrings(r.ordered, name)
	r.ordered = append(r.ordered, "")
	copy(r.ordered[i+1:], r.ordered[i:])
	r.ordered[i] = name
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// NewGaugeVec registers and returns a one-label gauge family. The label
// name is fixed at construction; label values must come from a bounded
// domain (cluster membership), never request data.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{name: name, help: help, label: label, vals: make(map[string]int64)}
	r.register(name, v)
	return v
}

// NewHistogram registers and returns a histogram over the given ascending
// bucket bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 || !sort.Float64sAreSorted(bounds) {
		panic(check.Invariantf("metrics: histogram %q needs ascending bounds", name))
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.register(name, h)
	return h
}

// WriteText renders every metric in sorted-name order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.ordered...)
	byName := make([]renderable, len(names))
	for i, n := range names {
		byName[i] = r.byName[n]
	}
	r.mu.Unlock()
	for _, m := range byName {
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}
